#include "diagnosis/cost_model.hpp"

namespace scandiag {

DiagnosisCost sessionCost(std::size_t numPatterns, std::size_t chainLength) {
  DiagnosisCost cost;
  cost.sessions = 1;
  cost.clockCycles = static_cast<std::uint64_t>(numPatterns) * (chainLength + 1) + chainLength;
  return cost;
}

DiagnosisCost partitionRunCost(std::size_t numPartitions, std::size_t groupsPerPartition,
                               std::size_t numPatterns, std::size_t chainLength) {
  const DiagnosisCost one = sessionCost(numPatterns, chainLength);
  DiagnosisCost total;
  total.sessions = numPartitions * groupsPerPartition;
  total.clockCycles = one.clockCycles * total.sessions;
  return total;
}

DiagnosisCost repeatedSessionsCost(std::size_t numSessions, std::size_t numPatterns,
                                   std::size_t chainLength) {
  const DiagnosisCost one = sessionCost(numPatterns, chainLength);
  DiagnosisCost total;
  total.sessions = numSessions;
  total.clockCycles = one.clockCycles * numSessions;
  return total;
}

DiagnosisCost adaptiveRunCost(std::size_t sessionsSpent, std::size_t numPatterns,
                              std::size_t chainLength) {
  // Every adaptive session is a standard BIST session (same patterns, same
  // shift/capture cadence) — only the schedule is data-dependent.
  return repeatedSessionsCost(sessionsSpent, numPatterns, chainLength);
}

DiagnosisCost distinguishingSessionCost(std::size_t numPatterns, std::size_t chainLength) {
  return sessionCost(numPatterns, chainLength);
}

}  // namespace scandiag
