#include "diagnosis/partition.hpp"

#include "common/assert.hpp"

namespace scandiag {

std::size_t Partition::groupOf(std::size_t pos) const {
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (groups[g].test(pos)) return g;
  }
  SCANDIAG_ASSERT(false, "position not covered by any group");
}

std::vector<std::size_t> Partition::groupTable() const {
  std::vector<std::size_t> table(length(), static_cast<std::size_t>(-1));
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::size_t pos = groups[g].findFirst(); pos != BitVector::npos;
         pos = groups[g].findNext(pos)) {
      SCANDIAG_ASSERT(table[pos] == static_cast<std::size_t>(-1), "overlapping groups");
      table[pos] = g;
    }
  }
  for (std::size_t pos = 0; pos < table.size(); ++pos)
    SCANDIAG_ASSERT(table[pos] != static_cast<std::size_t>(-1), "uncovered position");
  return table;
}

void Partition::validate() const {
  SCANDIAG_ASSERT(!groups.empty(), "partition has no groups");
  for (const BitVector& g : groups)
    SCANDIAG_ASSERT(g.size() == length(), "group size mismatch");
  (void)groupTable();  // checks disjointness + coverage
}

std::vector<Partition> takePartitions(PartitionScheme& scheme, std::size_t count) {
  std::vector<Partition> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(scheme.next());
  return out;
}

}  // namespace scandiag
