// Tester session logs: the bridge from silicon to this library.
//
// Everything else in scandiag can derive verdicts from simulation because it
// owns the DUT model. On real hardware the only diagnosis inputs are the
// tester's per-session results: for each (partition, group) session, pass or
// fail, and optionally the MISR error signature (observed XOR expected). This
// module defines a line-oriented log format for exactly that data and the
// offline entry point that turns a log into candidate failing cells:
//
//   # scandiag session log
//   sessions <partitions> <groups>
//   verdict <partition> <group> pass|fail [sig <hex>]
//
// Unlisted sessions default to pass (testers usually log failures only).
// diagnoseFromLog() replays the inclusion-exclusion (and, when every failing
// session carries a signature, the superposition pruner) against the SAME
// partition sequence the BIST controller used — which the deterministic
// generators reproduce from the configuration alone.
#pragma once

#include <istream>
#include <string>

#include "diagnosis/candidate_analyzer.hpp"
#include "diagnosis/experiment_driver.hpp"
#include "diagnosis/session_engine.hpp"

namespace scandiag {

struct TesterLog {
  std::size_t numPartitions = 0;
  std::size_t groupsPerPartition = 0;
  GroupVerdicts verdicts;  // hasSignatures iff every failing session had one
};

TesterLog parseTesterLog(std::istream& in);
TesterLog parseTesterLogString(const std::string& text);
TesterLog parseTesterLogFile(const std::string& path);

/// Serializes verdicts in the log format (failing sessions only, plus the
/// header). Inverse of parseTesterLog for diagnosis purposes.
std::string writeTesterLog(const GroupVerdicts& verdicts);

/// Offline diagnosis: rebuilds the partition sequence from `config` (which
/// must match what was burned into the BIST controller), applies the log's
/// verdicts, and returns candidate failing cells. Signature-carrying logs
/// get superposition pruning when config.pruning is set.
CandidateSet diagnoseFromLog(const ScanTopology& topology, const DiagnosisConfig& config,
                             const TesterLog& log);

}  // namespace scandiag
