#include "diagnosis/candidate_analyzer.hpp"

#include "common/assert.hpp"

namespace scandiag {

CandidateSet CandidateAnalyzer::analyze(const std::vector<Partition>& partitions,
                                        const GroupVerdicts& verdicts) const {
  SCANDIAG_REQUIRE(partitions.size() == verdicts.failing.size(),
                   "verdicts do not match partitions");
  const std::size_t length = topology_->maxChainLength();
  CandidateSet out;
  out.positions = BitVector(length, true);
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    BitVector failingUnion(length);
    for (std::size_t g = 0; g < partitions[p].groupCount(); ++g) {
      if (verdicts.failing[p].test(g)) failingUnion |= partitions[p].groups[g];
    }
    out.positions &= failingUnion;
  }
  out.cells = topology_->expandPositions(out.positions);
  return out;
}

}  // namespace scandiag
