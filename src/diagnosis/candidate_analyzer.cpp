#include "diagnosis/candidate_analyzer.hpp"

#include "common/assert.hpp"

namespace scandiag {

const char* inconsistencyKindName(InconsistencyKind kind) {
  switch (kind) {
    case InconsistencyKind::AllGroupsPassing:
      return "all-groups-passing";
    case InconsistencyKind::DisjointFailingUnion:
      return "disjoint-failing-union";
    case InconsistencyKind::PhantomFailingGroup:
      return "phantom-failing-group";
  }
  return "unknown";
}

std::string InconsistencyReport::describe() const {
  std::string out = "partition " + std::to_string(partition);
  if (group != BitVector::npos) out += " session " + std::to_string(group);
  out += ": ";
  out += inconsistencyKindName(kind);
  switch (kind) {
    case InconsistencyKind::AllGroupsPassing:
      out += " (another partition failed; a fail verdict was lost here)";
      break;
    case InconsistencyKind::DisjointFailingUnion:
      out += " (failing groups share no position with prior candidates)";
      break;
    case InconsistencyKind::PhantomFailingGroup:
      out += " (failing group disjoint from the final candidate set)";
      break;
  }
  return out;
}

CandidateSet CandidateAnalyzer::analyze(const std::vector<Partition>& partitions,
                                        const GroupVerdicts& verdicts) const {
  SCANDIAG_REQUIRE(partitions.size() == verdicts.failing.size(),
                   "verdicts do not match partitions");
  const std::size_t length = topology_->maxChainLength();
  CandidateSet out;
  out.positions = BitVector(length, true);
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    BitVector failingUnion(length);
    for (std::size_t g = 0; g < partitions[p].groupCount(); ++g) {
      if (verdicts.failing[p].test(g)) failingUnion |= partitions[p].groups[g];
    }
    out.positions &= failingUnion;
  }
  out.cells = topology_->expandPositions(out.positions);
  return out;
}

CheckedAnalysis CandidateAnalyzer::analyzeChecked(const std::vector<Partition>& partitions,
                                                  const GroupVerdicts& verdicts) const {
  SCANDIAG_REQUIRE(partitions.size() == verdicts.failing.size(),
                   "verdicts do not match partitions");
  const std::size_t length = topology_->maxChainLength();

  // Per-partition failing unions, and whether any partition failed at all.
  std::vector<BitVector> unions(partitions.size());
  bool anyFailing = false;
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    unions[p] = BitVector(length);
    for (std::size_t g = 0; g < partitions[p].groupCount(); ++g) {
      if (verdicts.failing[p].test(g)) unions[p] |= partitions[p].groups[g];
    }
    anyFailing = anyFailing || unions[p].any();
  }

  CheckedAnalysis out;
  out.candidates.positions = BitVector(length, true);
  if (!anyFailing) {
    // A fully passing schedule is consistent (the device passed); the empty
    // candidate set is the correct answer, not an inconsistency.
    out.candidates.positions = BitVector(length);
    out.candidates.cells = topology_->expandPositions(out.candidates.positions);
    return out;
  }

  for (std::size_t p = 0; p < partitions.size(); ++p) {
    if (unions[p].none()) {
      // The fault fired (some partition failed) yet this partition saw
      // nothing — impossible, its groups cover every position.
      out.inconsistencies.push_back({InconsistencyKind::AllGroupsPassing, p, BitVector::npos});
      continue;
    }
    if (!out.candidates.positions.intersects(unions[p])) {
      // Intersecting would exonerate everything. Suspect the session whose
      // pass verdict hides the current candidates: the first passing group
      // of p that overlaps them (it must exist — groups cover).
      std::size_t suspect = BitVector::npos;
      for (std::size_t g = 0; g < partitions[p].groupCount(); ++g) {
        if (!verdicts.failing[p].test(g) &&
            partitions[p].groups[g].intersects(out.candidates.positions)) {
          suspect = g;
          break;
        }
      }
      out.inconsistencies.push_back({InconsistencyKind::DisjointFailingUnion, p, suspect});
      continue;
    }
    out.candidates.positions &= unions[p];
    out.usedPartitions.push_back(p);
  }

  // Post-check: a failing group with no overlap with the final candidates is
  // a suspected phantom (pass→fail flip). It never removed candidates, so it
  // is reported but its partition stays used.
  for (const std::size_t p : out.usedPartitions) {
    for (std::size_t g = 0; g < partitions[p].groupCount(); ++g) {
      if (verdicts.failing[p].test(g) &&
          !partitions[p].groups[g].intersects(out.candidates.positions)) {
        out.inconsistencies.push_back({InconsistencyKind::PhantomFailingGroup, p, g});
      }
    }
  }

  out.candidates.cells = topology_->expandPositions(out.candidates.positions);
  return out;
}

UnionAnalysis CandidateAnalyzer::analyzeUnion(const std::vector<Partition>& partitions,
                                              const GroupVerdicts& verdicts,
                                              std::size_t maxFaults) const {
  SCANDIAG_REQUIRE(partitions.size() == verdicts.failing.size(),
                   "verdicts do not match partitions");
  const std::size_t length = topology_->maxChainLength();

  UnionAnalysis out;
  out.supersetFloor.positions = BitVector(length);
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    BitVector failingUnion(length);
    for (std::size_t g = 0; g < partitions[p].groupCount(); ++g) {
      if (verdicts.failing[p].test(g)) failingUnion |= partitions[p].groups[g];
    }
    if (failingUnion.none()) continue;  // a pass exonerates nothing here
    out.supersetFloor.positions |= failingUnion;
    bool merged = false;
    for (BitVector& cluster : out.clusterPositions) {
      if (cluster.intersects(failingUnion)) {
        cluster &= failingUnion;
        merged = true;
        break;
      }
    }
    if (!merged) out.clusterPositions.push_back(std::move(failingUnion));
  }

  out.clusters = out.clusterPositions.size();
  out.withinBudget = out.clusters <= maxFaults;
  out.candidates.positions = BitVector(length);
  for (const BitVector& cluster : out.clusterPositions) out.candidates.positions |= cluster;
  out.candidates.cells = topology_->expandPositions(out.candidates.positions);
  out.supersetFloor.cells = topology_->expandPositions(out.supersetFloor.positions);
  return out;
}

}  // namespace scandiag
