// Failing-vector (failing-pattern) identification — the time-domain dual of
// failing-cell identification, after Liu, Chakrabarty & Goessel [4] ("An
// Interval-Based Diagnosis Scheme for Identifying Failing Vectors in a
// Scan-BIST Environment") and the time/space view of Ghosh-Dastidar et al.
//
// The trick is that the whole partition machinery is axis-agnostic: here the
// selection axis is the *pattern index* instead of the shift position. A
// session applies only the patterns of one group (the pattern counter gates
// the MISR), the full response of every selected pattern is compacted, and a
// group fails iff any selected pattern captured any error. Inclusion-
// exclusion across partitions then yields candidate failing vectors, with
// the same interval/random/two-step trade-offs: error-producing patterns of
// one fault are NOT clustered in pattern order (pseudorandom stimuli), which
// is exactly why [4]'s setting favours different tuning than cell diagnosis
// — bench_ext_vectors quantifies this.
#pragma once

#include "diagnosis/candidate_analyzer.hpp"
#include "diagnosis/experiment_driver.hpp"
#include "diagnosis/metrics.hpp"

namespace scandiag {

class VectorDiagnoser {
 public:
  /// `config.numPatterns` defines the axis length; scheme/partitions/groups
  /// are interpreted over pattern indices. Exact verdicts only.
  explicit VectorDiagnoser(const DiagnosisConfig& config);

  const std::vector<Partition>& partitions() const { return partitions_; }

  /// Pattern indices on which the fault produced at least one error.
  static BitVector failingVectors(const FaultResponse& response, std::size_t numPatterns);

  /// Candidate failing vectors (pattern indices), a superset of the truth.
  BitVector diagnose(const FaultResponse& response) const;

  /// DR over failing vectors: (sum candidates - sum actual) / sum actual.
  DrReport evaluate(const std::vector<FaultResponse>& responses) const;

 private:
  DiagnosisConfig config_;
  std::vector<Partition> partitions_;
};

}  // namespace scandiag
