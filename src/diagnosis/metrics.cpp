#include "diagnosis/metrics.hpp"

#include "common/assert.hpp"

namespace scandiag {

void DrAccumulator::add(std::size_t candidateCells, std::size_t actualFailingCells) {
  SCANDIAG_REQUIRE(actualFailingCells > 0,
                   "DR accumulates detected faults only (no failing cells given)");
  ++faults_;
  sumCandidates_ += candidateCells;
  sumActual_ += actualFailingCells;
}

double DrAccumulator::dr() const {
  SCANDIAG_ASSERT(sumActual_ > 0, "dr() before any fault was accumulated");
  return (static_cast<double>(sumCandidates_) - static_cast<double>(sumActual_)) /
         static_cast<double>(sumActual_);
}

}  // namespace scandiag
