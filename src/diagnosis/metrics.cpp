#include "diagnosis/metrics.hpp"

#include <limits>

#include "common/assert.hpp"

namespace scandiag {

namespace {

/// a += b with a wrap check; `what` names the counter in the error.
void checkedAdd(std::uint64_t& a, std::uint64_t b, const char* what) {
  SCANDIAG_ASSERT(a <= std::numeric_limits<std::uint64_t>::max() - b, what);
  a += b;
}

}  // namespace

void DrAccumulator::add(std::size_t candidateCells, std::size_t actualFailingCells) {
  SCANDIAG_REQUIRE(actualFailingCells > 0,
                   "DR accumulates detected faults only (no failing cells given)");
  checkedAdd(faults_, 1, "fault counter overflow");
  checkedAdd(sumCandidates_, candidateCells, "candidate-cell sum overflow");
  checkedAdd(sumActual_, actualFailingCells, "actual-failing-cell sum overflow");
}

void DrAccumulator::merge(const DrAccumulator& other) {
  checkedAdd(faults_, other.faults_, "fault counter overflow");
  checkedAdd(sumCandidates_, other.sumCandidates_, "candidate-cell sum overflow");
  checkedAdd(sumActual_, other.sumActual_, "actual-failing-cell sum overflow");
}

double DrAccumulator::dr() const {
  SCANDIAG_ASSERT(sumActual_ > 0, "dr() before any fault was accumulated");
  return (static_cast<double>(sumCandidates_) - static_cast<double>(sumActual_)) /
         static_cast<double>(sumActual_);
}

}  // namespace scandiag
