#include "diagnosis/two_step_scheme.hpp"

#include "diagnosis/deterministic_partitioner.hpp"

#include "common/assert.hpp"

namespace scandiag {

std::string schemeName(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::IntervalBased:
      return "interval-based";
    case SchemeKind::RandomSelection:
      return "random-selection";
    case SchemeKind::TwoStep:
      return "two-step";
    case SchemeKind::DeterministicInterval:
      return "deterministic-interval";
    case SchemeKind::Adaptive:
      return "adaptive";
  }
  throw std::logic_error("unknown SchemeKind");
}

SchemeKind parseSchemeKind(const std::string& name) {
  if (name == "interval" || name == "interval-based") return SchemeKind::IntervalBased;
  if (name == "random" || name == "random-selection") return SchemeKind::RandomSelection;
  if (name == "two-step") return SchemeKind::TwoStep;
  if (name == "deterministic" || name == "deterministic-interval")
    return SchemeKind::DeterministicInterval;
  if (name == "adaptive") return SchemeKind::Adaptive;
  throw std::invalid_argument("unknown scheme '" + name +
                              "' (interval|random|two-step|deterministic|adaptive)");
}

TwoStepScheme::TwoStepScheme(const SchemeConfig& config, std::size_t chainLength,
                             std::size_t groupCount)
    : intervalRemaining_(config.intervalPartitions),
      interval_(IntervalPartitionerConfig{config.lfsr, config.rlen, config.intervalStartSeed},
                chainLength, groupCount),
      random_(RandomSelectionConfig{config.lfsr, config.randomSeed}, chainLength, groupCount) {}

Partition TwoStepScheme::next() {
  if (intervalRemaining_ > 0) {
    --intervalRemaining_;
    return interval_.next();
  }
  return random_.next();
}

std::unique_ptr<PartitionScheme> makeScheme(SchemeKind kind, const SchemeConfig& config,
                                            std::size_t chainLength, std::size_t groupCount) {
  switch (kind) {
    case SchemeKind::IntervalBased:
      return std::make_unique<IntervalPartitioner>(
          IntervalPartitionerConfig{config.lfsr, config.rlen, config.intervalStartSeed},
          chainLength, groupCount);
    case SchemeKind::RandomSelection:
      return std::make_unique<RandomSelectionPartitioner>(
          RandomSelectionConfig{config.lfsr, config.randomSeed}, chainLength, groupCount);
    case SchemeKind::TwoStep:
      return std::make_unique<TwoStepScheme>(config, chainLength, groupCount);
    case SchemeKind::DeterministicInterval:
      return std::make_unique<DeterministicIntervalPartitioner>(DeterministicIntervalConfig{},
                                                                chainLength, groupCount);
    case SchemeKind::Adaptive:
      throw std::invalid_argument(
          "adaptive has no fixed partition sequence: partitions are chosen online per fault "
          "(use --scheme adaptive on dr/soc-dr, or AdaptivePlanner directly)");
  }
  throw std::logic_error("unknown SchemeKind");
}

}  // namespace scandiag
