// Diagnosis-time cost model.
//
// The dominant cost of partition-based diagnosis is re-applying the whole
// BIST pattern set once per (partition, group) session: each session is
// patterns x (chainLength shift cycles + 1 capture cycle), plus the unload of
// the last capture. The paper argues two-step's value partly through this
// lens (Fig. 5: fewer partitions to a target DR = proportionally less tester
// time); this model makes the accounting explicit and comparable across
// schemes, including the adaptive binary-search baseline whose session count
// is data-dependent.
#pragma once

#include <cstddef>
#include <cstdint>

namespace scandiag {

struct DiagnosisCost {
  std::size_t sessions = 0;
  std::uint64_t clockCycles = 0;

  DiagnosisCost& operator+=(const DiagnosisCost& rhs) {
    sessions += rhs.sessions;
    clockCycles += rhs.clockCycles;
    return *this;
  }
};

/// Cycles for one BIST session: per pattern, chainLength shift-in cycles
/// (which simultaneously shift out the previous capture) + 1 capture cycle,
/// plus a final chainLength-cycle unload of the last capture.
DiagnosisCost sessionCost(std::size_t numPatterns, std::size_t chainLength);

/// Full partition-based run: partitions x groups sessions.
DiagnosisCost partitionRunCost(std::size_t numPartitions, std::size_t groupsPerPartition,
                               std::size_t numPatterns, std::size_t chainLength);

/// Cost of `numSessions` repeated sessions — the retry-budget accounting
/// unit: RecoveredDiagnosis::retrySessions through this gives the exact
/// tester-time overhead of recovery on top of partitionRunCost.
DiagnosisCost repeatedSessionsCost(std::size_t numSessions, std::size_t numPatterns,
                                   std::size_t chainLength);

/// Tester time of an adaptive (data-dependent) schedule: `sessionsSpent`
/// sessions at the standard per-session rate. Identical accounting to
/// partitionRunCost when the counts match — adaptive and fixed runs compare
/// on the same tester-time axis, which is what "equal session budget" means
/// in the bench_adaptive DR-vs-sessions curves.
DiagnosisCost adaptiveRunCost(std::size_t sessionsSpent, std::size_t numPatterns,
                              std::size_t chainLength);

/// Tester time of `numPatterns` PODEM distinguishing patterns applied as one
/// extra session (defect-zoo stall breaking): a distinguishing set is tiny
/// (one pattern per unresolved cube), so it is charged as a single session
/// over just those patterns rather than a full pattern-set re-application.
DiagnosisCost distinguishingSessionCost(std::size_t numPatterns, std::size_t chainLength);

}  // namespace scandiag
