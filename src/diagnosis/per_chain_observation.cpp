#include "diagnosis/per_chain_observation.hpp"

#include "common/assert.hpp"

namespace scandiag {

PerChainVerdicts PerChainObservation::run(const std::vector<Partition>& partitions,
                                          const FaultResponse& response) const {
  const std::size_t W = topology_->numChains();
  const std::size_t L = topology_->maxChainLength();

  // Failing positions per chain.
  std::vector<BitVector> failingPositions(W, BitVector(L));
  for (std::size_t cell = response.failingCells.findFirst(); cell != BitVector::npos;
       cell = response.failingCells.findNext(cell)) {
    const ScanTopology::CellLoc loc = topology_->location(cell);
    failingPositions[loc.chain].set(loc.position);
  }

  PerChainVerdicts verdicts;
  verdicts.failing.reserve(partitions.size());
  for (const Partition& partition : partitions) {
    SCANDIAG_REQUIRE(partition.length() == L, "partition length does not match topology");
    std::vector<BitVector> perChain(W, BitVector(partition.groupCount()));
    for (std::size_t c = 0; c < W; ++c) {
      for (std::size_t g = 0; g < partition.groupCount(); ++g) {
        if (partition.groups[g].intersects(failingPositions[c])) perChain[c].set(g);
      }
    }
    verdicts.failing.push_back(std::move(perChain));
  }
  return verdicts;
}

CandidateSet PerChainObservation::analyze(const std::vector<Partition>& partitions,
                                          const PerChainVerdicts& verdicts) const {
  SCANDIAG_REQUIRE(partitions.size() == verdicts.failing.size(),
                   "verdicts do not match partitions");
  const std::size_t W = topology_->numChains();
  const std::size_t L = topology_->maxChainLength();

  // Candidate positions tracked per chain.
  std::vector<BitVector> perChainPositions(W, BitVector(L, true));
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    for (std::size_t c = 0; c < W; ++c) {
      BitVector failingUnion(L);
      for (std::size_t g = 0; g < partitions[p].groupCount(); ++g) {
        if (verdicts.failing[p][c].test(g)) failingUnion |= partitions[p].groups[g];
      }
      perChainPositions[c] &= failingUnion;
    }
  }

  CandidateSet out;
  out.positions = BitVector(L);
  out.cells = BitVector(topology_->numCells());
  for (std::size_t cell = 0; cell < topology_->numCells(); ++cell) {
    const ScanTopology::CellLoc loc = topology_->location(cell);
    if (perChainPositions[loc.chain].test(loc.position)) {
      out.cells.set(cell);
      out.positions.set(loc.position);
    }
  }
  return out;
}

CandidateSet PerChainObservation::diagnose(const std::vector<Partition>& partitions,
                                           const FaultResponse& response) const {
  return analyze(partitions, run(partitions, response));
}

}  // namespace scandiag
