#include "diagnosis/recovery.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace scandiag {

namespace {

/// Majority vote per group across the original row and `reruns`; ties vote
/// fail (superset-preserving, see header).
BitVector majorityRow(const BitVector& original, const std::vector<BitVector>& reruns) {
  const std::size_t groups = original.size();
  const std::size_t total = 1 + reruns.size();
  BitVector voted(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    std::size_t failVotes = original.test(g) ? 1 : 0;
    for (const BitVector& row : reruns) {
      if (row.test(g)) ++failVotes;
    }
    if (2 * failVotes >= total) voted.set(g);
  }
  return voted;
}

}  // namespace

RecoveredDiagnosis DiagnosisRecovery::recover(const std::vector<Partition>& partitions,
                                              const GroupVerdicts& verdicts,
                                              const PartitionRerun& rerun) const {
  obs::PhaseScope phase(obs::Phase::Recovery);
  RecoveredDiagnosis out;
  CheckedAnalysis checked = analyzer_.analyzeChecked(partitions, verdicts);
  out.inconsistencies = checked.inconsistencies;
  if (!checked.inconsistencies.empty()) {
    obs::count(obs::Counter::InconsistenciesDetected, checked.inconsistencies.size());
  }
  if (checked.consistent()) {
    out.candidates = std::move(checked.candidates);
    return out;
  }

  // Suspect partitions, ascending so the budget is spent deterministically.
  // Remember each partition's first-reported kind: DisjointFailingUnion gets
  // the replay-stability short-circuit below.
  std::set<std::size_t> suspects;
  std::map<std::size_t, InconsistencyKind> suspectKind;
  for (const InconsistencyReport& report : checked.inconsistencies) {
    suspects.insert(report.partition);
    suspectKind.emplace(report.partition, report.kind);
  }

  GroupVerdicts repaired = verdicts;
  // Majority-voted rows invalidate the XOR-additive signature bookkeeping, so
  // the repaired verdicts carry none (pruning is skipped on the noisy path).
  repaired.hasSignatures = false;
  repaired.errorSig.clear();

  std::size_t budget = policy_.sessionBudget;
  std::size_t repairedPartitions = 0;
  std::set<std::size_t> deterministic;
  if (policy_.enabled() && rerun) {
    for (const std::size_t p : suspects) {
      const std::size_t perRerun = partitions[p].groupCount();
      if (perRerun > budget) continue;  // cannot afford even one re-run
      const bool disjointUnion =
          suspectKind.at(p) == InconsistencyKind::DisjointFailingUnion;
      std::vector<BitVector> rows;
      for (std::size_t attempt = 1;
           attempt <= policy_.maxRetriesPerSession && perRerun <= budget; ++attempt) {
        PartitionVerdictRow row = rerun(p, attempt);
        SCANDIAG_ASSERT(row.failing.size() == partitions[p].groupCount(),
                        "re-run verdict row has the wrong group count");
        budget -= perRerun;
        out.retrySessions += perRerun;
        obs::count(obs::Counter::RetrySessionsSpent, perRerun);
        const bool replayStable =
            disjointUnion && attempt == 1 && row.failing == repaired.failing[p];
        rows.push_back(std::move(row.failing));
        if (replayStable) {
          // The disjoint union reproduced exactly: deterministic condition
          // (a genuine multi-fault union), not noise. Keep the row, stop
          // burning budget on majority votes.
          deterministic.insert(p);
          break;
        }
      }
      if (rows.empty()) continue;
      out.retriedPartitions.push_back(p);
      if (deterministic.count(p) != 0) continue;
      const BitVector voted = majorityRow(repaired.failing[p], rows);
      if (voted != repaired.failing[p]) {
        repaired.failing[p] = voted;
        ++repairedPartitions;
      }
    }
  }

  if (!deterministic.empty()) {
    // Short-circuit to the checked union mode: the replay-stable disjoint
    // partitions are evidence of simultaneous faults, so the single-fault
    // intersection model no longer applies to any partition. Cluster the
    // failing unions instead; over the fault budget, fall back to the
    // degrade-never-lie superset floor.
    out.deterministicPartitions = deterministic.size();
    out.unionDiagnosis = true;
    UnionAnalysis analysis =
        analyzer_.analyzeUnion(partitions, repaired, policy_.maxUnionFaults);
    out.unionClusters = analysis.clusters;
    if (analysis.clusters > 1) {
      obs::count(obs::Counter::UnionSplits, analysis.clusters - 1);
    }
    out.candidates = analysis.withinBudget ? std::move(analysis.candidates)
                                           : std::move(analysis.supersetFloor);
    out.resolved = analysis.withinBudget;
    if (!analysis.withinBudget) obs::count(obs::Counter::DegradedSupersets);
    double confidence = 1.0;
    for (std::size_t i = 0; i < repairedPartitions; ++i) confidence *= 0.95;
    for (std::size_t i = 1; i < analysis.clusters; ++i) confidence *= 0.9;
    if (!analysis.withinBudget) confidence *= 0.5;
    out.confidence = std::clamp(confidence, kConfidenceFloor, 1.0);
    return out;
  }

  CheckedAnalysis finalAnalysis = analyzer_.analyzeChecked(partitions, repaired);
  out.candidates = std::move(finalAnalysis.candidates);

  // Partitions outside the final intersection were dropped (degradation).
  std::size_t phantoms = 0;
  for (const InconsistencyReport& report : finalAnalysis.inconsistencies) {
    if (report.kind == InconsistencyKind::PhantomFailingGroup) ++phantoms;
  }

  // A surviving phantom means either a spurious fail verdict in the reported
  // group or — indistinguishable from the verdicts — a lost fail verdict in
  // one of the *used* partitions that shrank the intersection below the true
  // cells. Cover both with leave-one-out widening: the union over used
  // partitions of the intersection that omits each in turn. If at most one
  // used partition lies, the term omitting the liar intersects only honest
  // unions, so the result is a superset of the true failing cells; with no
  // liar every term contains the plain intersection, so it only ever widens.
  if (phantoms > 0 && !finalAnalysis.usedPartitions.empty()) {
    const std::size_t length = topology_->maxChainLength();
    std::vector<BitVector> unions;
    unions.reserve(finalAnalysis.usedPartitions.size());
    for (const std::size_t p : finalAnalysis.usedPartitions) {
      BitVector u(length);
      for (std::size_t g = 0; g < partitions[p].groupCount(); ++g) {
        if (repaired.failing[p].test(g)) u |= partitions[p].groups[g];
      }
      unions.push_back(std::move(u));
    }
    BitVector widened(length);
    for (std::size_t skip = 0; skip < unions.size(); ++skip) {
      BitVector term(length, true);
      for (std::size_t q = 0; q < unions.size(); ++q) {
        if (q != skip) term &= unions[q];
      }
      widened |= term;
    }
    out.candidates.positions = std::move(widened);
    out.candidates.cells = topology_->expandPositions(out.candidates.positions);
  }
  std::set<std::size_t> dropped;
  for (std::size_t p = 0; p < partitions.size(); ++p) dropped.insert(p);
  for (const std::size_t p : finalAnalysis.usedPartitions) dropped.erase(p);
  out.droppedPartitions.assign(dropped.begin(), dropped.end());
  out.resolved = finalAnalysis.consistent();

  double confidence = partitions.empty()
                          ? 1.0
                          : static_cast<double>(finalAnalysis.usedPartitions.size()) /
                                static_cast<double>(partitions.size());
  for (std::size_t i = 0; i < repairedPartitions; ++i) confidence *= 0.95;
  for (std::size_t i = 0; i < phantoms; ++i) confidence *= 0.9;
  // Floored, not clamped to 0: a produced diagnosis is always distinguishable
  // from "no diagnosis", however degraded (kConfidenceFloor doc in header).
  out.confidence = std::clamp(confidence, kConfidenceFloor, 1.0);
  return out;
}

RecoveredDiagnosis DiagnosisRecovery::recover(const PreparedPartitionSet& prepared,
                                              const GroupVerdicts& verdicts,
                                              const PartitionRerun& rerun) const {
  return recover(prepared.partitions(), verdicts, rerun);
}

}  // namespace scandiag
