// Diagnosis planning: choosing the partition budget before testing.
//
// The paper picks groups-per-partition by hand per experiment ("our strategy
// is to use more groups on the longer meta scan chains", §5) and shows via
// Fig. 5 that the partition count to a target DR is the real diagnosis-time
// knob. This module makes both executable:
//
//  * recommendGroupCount(): the rule-of-thumb — groups ≈ sqrt(chain length),
//    rounded to a power of two (the label is a bit field), clamped to the
//    paper's practical range. Reproduces the paper's own choices (s953 → 4,
//    Table 2 chains → 16, SOC-1 → 32..64).
//  * planDiagnosis(): empirical calibration — evaluate candidate (groups,
//    partitions) configurations against a sample of fault responses and pick
//    the cheapest (fewest sessions, then fewest cycles) that meets a target
//    DR. This is what a test engineer would run once per product.
#pragma once

#include "diagnosis/cost_model.hpp"
#include "diagnosis/experiment_driver.hpp"

namespace scandiag {

/// Power-of-two group count scaled to the selection-axis length.
std::size_t recommendGroupCount(std::size_t chainLength);

struct PlanRequest {
  double targetDr = 0.5;
  std::size_t maxPartitions = 16;
  SchemeKind scheme = SchemeKind::TwoStep;
  std::size_t numPatterns = 128;
  /// Candidate group counts; empty = {4, 8, 16, 32, 64} clamped to the chain.
  /// Explicit candidates are clamped to the chain length and rounded down to
  /// a power of two (random-selection labels are bit fields); collisions
  /// after clamping are evaluated once.
  std::vector<std::size_t> groupCandidates;
};

struct PlanResult {
  bool feasible = false;
  DiagnosisConfig config;   // valid iff feasible
  double achievedDr = 0.0;  // at the chosen budget
  DiagnosisCost cost;       // sessions / cycles of the chosen plan
};

/// Calibrates against `sample` (fault responses from a representative fault
/// sample) and returns the cheapest plan meeting the target, or
/// feasible=false if no candidate configuration reaches it.
PlanResult planDiagnosis(const ScanTopology& topology,
                         const std::vector<FaultResponse>& sample,
                         const PlanRequest& request);

}  // namespace scandiag
