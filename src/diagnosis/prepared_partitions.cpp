#include "diagnosis/prepared_partitions.hpp"

#include <limits>

#include "common/assert.hpp"

namespace scandiag {

PreparedPartitionSet::PreparedPartitionSet(std::vector<Partition> partitions)
    : partitions_(std::move(partitions)) {
  tables_.reserve(partitions_.size());
  for (const Partition& p : partitions_) tables_.push_back(p.groupTable());

  groupOffsets_.assign(partitions_.size() + 1, 0);
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    groupOffsets_[p + 1] = groupOffsets_[p] + partitions_[p].groupCount();
  }
  totalGroups_ = groupOffsets_.empty() ? 0 : groupOffsets_.back();

  // Batch layout: only when every partition spans the same selection axis
  // (the invariant of any schedule a partitioner emits) and global group ids
  // fit the u32 cells of the transposed table.
  if (partitions_.empty()) return;
  const std::size_t length = partitions_.front().length();
  for (const Partition& p : partitions_) {
    if (p.length() != length) return;
  }
  if (length == 0 || totalGroups_ > std::numeric_limits<std::uint32_t>::max()) return;

  posGroups_.resize(length * partitions_.size());
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    const std::vector<std::size_t>& table = tables_[p];
    const std::uint32_t offset = static_cast<std::uint32_t>(groupOffsets_[p]);
    for (std::size_t pos = 0; pos < length; ++pos) {
      posGroups_[pos * partitions_.size() + p] =
          offset + static_cast<std::uint32_t>(table[pos]);
    }
  }
  batchReady_ = true;
}

}  // namespace scandiag
