#include "diagnosis/prepared_partitions.hpp"

namespace scandiag {

PreparedPartitionSet::PreparedPartitionSet(std::vector<Partition> partitions)
    : partitions_(std::move(partitions)) {
  tables_.reserve(partitions_.size());
  for (const Partition& p : partitions_) tables_.push_back(p.groupTable());
}

}  // namespace scandiag
