// From failing scan cells back to suspect fault sites.
//
// The paper's deliverable is the set of failing scan cells (for physical
// failure analysis). This extension closes the loop logically: a single
// stuck-at fault at gate g can only corrupt cells inside g's output cone, so
// any gate whose cone does not cover ALL observed failing cells is exonerated
// as a single-fault site. ConeDatabase precomputes every gate's reachable-DFF
// set with one reverse-topological sweep (reach(g) = directly captured DFFs
// ∪ reach of combinational fanouts), making localization a bitset-subset scan.
#pragma once

#include <vector>

#include "common/bitvector.hpp"
#include "netlist/netlist.hpp"

namespace scandiag {

class ConeDatabase {
 public:
  explicit ConeDatabase(const Netlist& netlist);

  const Netlist& netlist() const { return *netlist_; }

  /// DFF ordinals reachable from gate `id`'s output (one capture cycle).
  const BitVector& reachableDffs(GateId id) const;

 private:
  const Netlist* netlist_;
  std::vector<BitVector> reach_;
};

/// Gates that can, as single stuck-at sites, explain every failing cell:
/// { g : failingCells ⊆ reach(g) }. failingCells is indexed by DFF ordinal.
/// The true fault site is always included (soundness); the list shrinks as
/// diagnosis sharpens the failing-cell set.
std::vector<GateId> localizeSingleFault(const ConeDatabase& cones,
                                        const BitVector& failingCells);

}  // namespace scandiag
