#include "diagnosis/binary_search_diagnoser.hpp"

#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace scandiag {

BinarySearchDiagnoser::BinarySearchDiagnoser(const ScanTopology& topology,
                                             std::size_t numPatterns)
    : topology_(&topology), numPatterns_(numPatterns) {
  SCANDIAG_REQUIRE(numPatterns >= 1, "need at least one pattern");
}

BinarySearchResult BinarySearchDiagnoser::diagnose(const FaultResponse& response) const {
  const std::size_t length = topology_->maxChainLength();
  const BitVector failingPositions = topology_->collapseCells(response.failingCells);

  BinarySearchResult result;
  result.candidates.positions = BitVector(length);

  // Exact session oracle: does any selected position hold a failing cell?
  // Each query is one full BIST session over [lo, hi).
  auto intervalFails = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t p = lo; p < hi; ++p) {
      if (failingPositions.test(p)) return true;
    }
    return false;
  };

  // Seed with one session over the whole axis.
  std::vector<std::pair<std::size_t, std::size_t>> failing;  // known-failing intervals
  ++result.sessions;
  if (intervalFails(0, length)) failing.push_back({0, length});

  while (!failing.empty()) {
    const auto [lo, hi] = failing.back();
    failing.pop_back();
    if (hi - lo == 1) {
      result.candidates.positions.set(lo);
      continue;
    }
    const std::size_t mid = lo + (hi - lo) / 2;
    ++result.sessions;
    const bool leftFails = intervalFails(lo, mid);
    if (leftFails) {
      failing.push_back({lo, mid});
      // The right half's verdict is unknown; it costs a session.
      ++result.sessions;
      if (intervalFails(mid, hi)) failing.push_back({mid, hi});
    } else {
      // Parent failed and the left half passed: the right half fails, free.
      failing.push_back({mid, hi});
    }
  }

  result.candidates.cells = topology_->expandPositions(result.candidates.positions);
  const DiagnosisCost perSession = sessionCost(numPatterns_, length);
  result.cost.sessions = result.sessions;
  result.cost.clockCycles = perSession.clockCycles * result.sessions;
  return result;
}

BinarySearchResult BinarySearchDiagnoser::diagnoseWithOracle(const IntervalOracle& oracle,
                                                             const RetryPolicy& policy) const {
  const std::size_t length = topology_->maxChainLength();
  BinarySearchResult result;
  result.candidates.positions = BitVector(length);
  std::size_t retryBudget = policy.enabled() ? policy.sessionBudget : 0;

  auto query = [&](std::size_t lo, std::size_t hi) {
    ++result.sessions;
    return oracle(lo, hi, 0);
  };
  // Majority vote of the original verdict plus budget-capped re-queries;
  // ties vote fail (superset-preserving, as in DiagnosisRecovery).
  auto majority = [&](std::size_t lo, std::size_t hi, bool original) {
    std::size_t failVotes = original ? 1 : 0, total = 1;
    for (std::size_t attempt = 1; attempt <= policy.maxRetriesPerSession && retryBudget > 0;
         ++attempt) {
      --retryBudget;
      ++result.retrySessions;
      ++result.sessions;
      if (oracle(lo, hi, attempt)) ++failVotes;
      ++total;
    }
    return 2 * failVotes >= total;
  };

  // The root session gets verified up front when retrying is allowed: a
  // flipped root pass is undetectable later and would silently report a
  // fault-free device.
  bool rootFails = query(0, length);
  if (!rootFails && policy.enabled()) rootFails = majority(0, length, false);

  std::vector<std::pair<std::size_t, std::size_t>> failing;
  if (rootFails) failing.push_back({0, length});

  while (!failing.empty()) {
    const auto [lo, hi] = failing.back();
    failing.pop_back();
    if (hi - lo == 1) {
      result.candidates.positions.set(lo);
      continue;
    }
    const std::size_t mid = lo + (hi - lo) / 2;
    // Unlike the trusted oracle, a passing left half proves nothing about
    // the right half — both are queried.
    bool leftFails = query(lo, mid);
    bool rightFails = query(mid, hi);
    if (!leftFails && !rightFails) {
      // Parent failed, both halves pass: physically impossible. Retry both;
      // if the verdict stands, keep the whole parent interval as candidates
      // rather than losing the fault.
      ++result.inconsistencies;
      leftFails = majority(lo, mid, false);
      rightFails = majority(mid, hi, false);
      if (!leftFails && !rightFails) {
        for (std::size_t p = lo; p < hi; ++p) result.candidates.positions.set(p);
        result.resolved = false;
        continue;
      }
    }
    if (leftFails) failing.push_back({lo, mid});
    if (rightFails) failing.push_back({mid, hi});
  }

  result.candidates.cells = topology_->expandPositions(result.candidates.positions);
  const DiagnosisCost perSession = sessionCost(numPatterns_, length);
  result.cost.sessions = result.sessions;
  result.cost.clockCycles = perSession.clockCycles * result.sessions;
  return result;
}

double BinarySearchDiagnoser::meanSessions(const std::vector<FaultResponse>& responses) const {
  std::size_t total = 0, count = 0;
  for (const FaultResponse& r : responses) {
    if (!r.detected()) continue;
    total += diagnose(r).sessions;
    ++count;
  }
  SCANDIAG_REQUIRE(count > 0, "no detected responses");
  return static_cast<double>(total) / static_cast<double>(count);
}

}  // namespace scandiag
