// Diagnostic-resolution metric (paper §4):
//
//   DR = ( Σ_f |candidate cells(f)| − Σ_f |actual failing cells(f)| )
//        ─────────────────────────────────────────────────────────────
//                       Σ_f |actual failing cells(f)|
//
// DR = 0 means every candidate set collapsed onto exactly the failing cells;
// lower is better. Undetected faults (no failing cells) add nothing to either
// sum and are excluded upstream (DESIGN.md §5 item 2).
#pragma once

#include <cstddef>
#include <cstdint>

namespace scandiag {

// All counters are 64-bit and every addition is overflow-checked (throws
// std::logic_error): parallel evaluation reduces many per-fault counts — and
// merged sub-accumulators — into one accumulator, where a silent wrap would
// quietly corrupt DR instead of failing one fault loudly.
class DrAccumulator {
 public:
  void add(std::size_t candidateCells, std::size_t actualFailingCells);

  /// Folds another accumulator in (the parallel sum path: one accumulator
  /// per worker chunk, merged in chunk order). Overflow-checked like add().
  void merge(const DrAccumulator& other);

  std::uint64_t faults() const { return faults_; }
  std::uint64_t sumCandidates() const { return sumCandidates_; }
  std::uint64_t sumActual() const { return sumActual_; }

  /// Throws std::logic_error when no failing cells were accumulated.
  double dr() const;

 private:
  std::uint64_t faults_ = 0;
  std::uint64_t sumCandidates_ = 0;
  std::uint64_t sumActual_ = 0;
};

struct DrReport {
  double dr = 0.0;
  std::size_t faults = 0;
  std::uint64_t sumCandidates = 0;
  std::uint64_t sumActual = 0;
};

}  // namespace scandiag
