// Per-chain MISR observation — the architecture knob behind Table 4's DR.
//
// With ONE compactor (the paper's Fig. 1), a session's verdict covers every
// chain at the selected positions: a failing group suspects W cells per
// position. Giving each chain its own MISR costs W-1 extra registers but
// splits every session verdict into W per-chain verdicts, restoring
// (position × chain) = per-cell granularity. This module implements that
// observation model on top of the same partition schedule:
//
//   candidates = ∩ over partitions of ∪ over failing (group, chain) pairs of
//                { cells of chain c at the positions of group g }
//
// Soundness is as before: a failing cell's (group, chain) pair fails in every
// partition. bench_ablation_perchain quantifies the DR payoff on the d695
// layout where the shared-compactor penalty is largest.
#pragma once

#include "bist/scan_topology.hpp"
#include "diagnosis/candidate_analyzer.hpp"
#include "diagnosis/partition.hpp"
#include "sim/fault_simulator.hpp"

namespace scandiag {

/// verdicts[p][c].test(g): group g of partition p failed on chain c's MISR.
struct PerChainVerdicts {
  std::vector<std::vector<BitVector>> failing;
};

class PerChainObservation {
 public:
  explicit PerChainObservation(const ScanTopology& topology) : topology_(&topology) {}

  /// Exact verdicts: (p, c, g) fails iff some cell of chain c at a position
  /// of group g captured an error.
  PerChainVerdicts run(const std::vector<Partition>& partitions,
                       const FaultResponse& response) const;

  /// Inclusion-exclusion at (position, chain) granularity.
  CandidateSet analyze(const std::vector<Partition>& partitions,
                       const PerChainVerdicts& verdicts) const;

  /// Convenience: run + analyze.
  CandidateSet diagnose(const std::vector<Partition>& partitions,
                        const FaultResponse& response) const;

 private:
  const ScanTopology* topology_;
};

}  // namespace scandiag
