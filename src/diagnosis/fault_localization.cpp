#include "diagnosis/fault_localization.hpp"

#include "common/assert.hpp"
#include "netlist/levelizer.hpp"

namespace scandiag {

ConeDatabase::ConeDatabase(const Netlist& netlist) : netlist_(&netlist) {
  const std::size_t numDffs = netlist.dffs().size();
  std::vector<std::size_t> dffOrdinal(netlist.gateCount(), static_cast<std::size_t>(-1));
  for (std::size_t k = 0; k < numDffs; ++k) dffOrdinal[netlist.dffs()[k]] = k;

  reach_.assign(netlist.gateCount(), BitVector(numDffs));
  const Levelization lev = levelize(netlist);
  const auto& fanouts = netlist.fanouts();

  // Reverse topological sweep over combinational gates, then sources.
  auto accumulate = [&](GateId id) {
    BitVector& r = reach_[id];
    for (GateId user : fanouts[id]) {
      if (netlist.gate(user).type == GateType::Dff) {
        r.set(dffOrdinal[user]);
      } else {
        r |= reach_[user];
      }
    }
  };
  for (std::size_t i = lev.order.size(); i-- > 0;) accumulate(lev.order[i]);
  for (GateId id = 0; id < netlist.gateCount(); ++id) {
    if (isSourceType(netlist.gate(id).type)) accumulate(id);
  }
}

const BitVector& ConeDatabase::reachableDffs(GateId id) const {
  SCANDIAG_REQUIRE(id < reach_.size(), "gate id out of range");
  return reach_[id];
}

std::vector<GateId> localizeSingleFault(const ConeDatabase& cones,
                                        const BitVector& failingCells) {
  SCANDIAG_REQUIRE(failingCells.any(), "localization needs at least one failing cell");
  std::vector<GateId> suspects;
  for (GateId id = 0; id < cones.netlist().gateCount(); ++id) {
    if (failingCells.isSubsetOf(cones.reachableDffs(id))) suspects.push_back(id);
  }
  return suspects;
}

}  // namespace scandiag
