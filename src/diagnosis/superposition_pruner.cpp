#include "diagnosis/superposition_pruner.hpp"

#include <map>

#include "common/assert.hpp"
#include "common/gf2.hpp"

namespace scandiag {

CandidateSet SuperpositionPruner::prune(const std::vector<Partition>& partitions,
                                        const GroupVerdicts& verdicts,
                                        const CandidateSet& candidates,
                                        PruneStats* stats) const {
  // Group-membership table per partition, rebuilt for this call only.
  std::vector<std::vector<std::size_t>> rebuilt;
  rebuilt.reserve(partitions.size());
  for (const Partition& p : partitions) rebuilt.push_back(p.groupTable());
  std::vector<const std::vector<std::size_t>*> tables;
  tables.reserve(rebuilt.size());
  for (const auto& t : rebuilt) tables.push_back(&t);
  return pruneImpl(partitions, tables, verdicts, candidates, stats);
}

CandidateSet SuperpositionPruner::prune(const PreparedPartitionSet& prepared,
                                        const GroupVerdicts& verdicts,
                                        const CandidateSet& candidates,
                                        PruneStats* stats) const {
  std::vector<const std::vector<std::size_t>*> tables;
  tables.reserve(prepared.size());
  for (std::size_t p = 0; p < prepared.size(); ++p) tables.push_back(&prepared.groupTable(p));
  return pruneImpl(prepared.partitions(), tables, verdicts, candidates, stats);
}

CandidateSet SuperpositionPruner::pruneImpl(
    const std::vector<Partition>& partitions,
    const std::vector<const std::vector<std::size_t>*>& tables, const GroupVerdicts& verdicts,
    const CandidateSet& candidates, PruneStats* stats) const {
  SCANDIAG_REQUIRE(verdicts.hasSignatures,
                   "superposition pruning needs error signatures (set computeSignatures)");
  SCANDIAG_REQUIRE(partitions.size() == verdicts.failing.size(),
                   "verdicts do not match partitions");
  PruneStats local;
  if (candidates.positions.none() || partitions.empty()) {
    if (stats) *stats = local;
    return candidates;
  }

  // Atoms: candidate positions keyed by their membership vector.
  const std::vector<std::size_t> candPositions = candidates.positions.toIndices();
  std::map<std::vector<std::size_t>, std::size_t> atomIndex;
  std::vector<std::vector<std::size_t>> atomPositions;
  std::vector<std::size_t> atomOfPos(candPositions.size());
  std::vector<std::size_t> key(partitions.size());
  for (std::size_t i = 0; i < candPositions.size(); ++i) {
    const std::size_t pos = candPositions[i];
    for (std::size_t p = 0; p < partitions.size(); ++p) key[p] = (*tables[p])[pos];
    const auto [it, inserted] = atomIndex.emplace(key, atomPositions.size());
    if (inserted) atomPositions.emplace_back();
    atomPositions[it->second].push_back(pos);
    atomOfPos[i] = it->second;
  }
  const std::size_t numAtoms = atomPositions.size();
  local.atoms = numAtoms;

  // One equation per failing group: XOR of member atoms' signatures equals the
  // observed group error signature. (Passing groups contain no candidate
  // positions, hence no atoms — their equations would be 0 = 0.)
  const unsigned degree = verdicts.signatureDegree;
  Gf2System system(numAtoms, degree);
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    for (std::size_t g = 0; g < partitions[p].groupCount(); ++g) {
      if (!verdicts.failing[p].test(g)) continue;
      BitVector coeffs(numAtoms);
      for (std::size_t a = 0; a < numAtoms; ++a) {
        // Atom membership is uniform across its positions; test the first.
        if ((*tables[p])[atomPositions[a].front()] == g) coeffs.set(a);
      }
      BitVector rhs(degree);
      const std::uint64_t sig = verdicts.errorSig[p][g];
      for (unsigned bit = 0; bit < degree; ++bit) {
        if ((sig >> bit) & 1u) rhs.set(bit);
      }
      system.addEquation(coeffs, rhs);
    }
  }

  if (!system.reduce()) {
    // Inconsistent observations (MISR aliasing): pruning would be unsound.
    local.consistent = false;
    if (stats) *stats = local;
    return candidates;
  }

  CandidateSet pruned = candidates;
  for (std::size_t a = 0; a < numAtoms; ++a) {
    if (!system.forcedZero(a)) continue;
    ++local.prunedAtoms;
    for (std::size_t pos : atomPositions[a]) {
      pruned.positions.reset(pos);
      ++local.prunedPositions;
    }
  }
  pruned.cells = topology_->expandPositions(pruned.positions);
  if (stats) *stats = local;
  return pruned;
}

}  // namespace scandiag
