#include "diagnosis/superposition_pruner.hpp"

#include <map>

#include "common/assert.hpp"
#include "common/gf2.hpp"

namespace scandiag {
namespace {

/// Shared pruning engine; `groupOf(p, pos)` resolves a position's group index
/// in partition p. The three call sites differ only in where that membership
/// lookup comes from (rebuilt table / prepared table / transposed batch
/// layout), so the GF(2) machinery is written once against the accessor.
template <typename GroupOf>
CandidateSet pruneWith(const ScanTopology& topology, const std::vector<Partition>& partitions,
                       GroupOf&& groupOf, const GroupVerdicts& verdicts,
                       const CandidateSet& candidates, PruneStats* stats) {
  SCANDIAG_REQUIRE(verdicts.hasSignatures,
                   "superposition pruning needs error signatures (set computeSignatures)");
  SCANDIAG_REQUIRE(partitions.size() == verdicts.failing.size(),
                   "verdicts do not match partitions");
  PruneStats local;
  if (candidates.positions.none() || partitions.empty()) {
    if (stats) *stats = local;
    return candidates;
  }

  // Atoms: candidate positions keyed by their membership vector.
  const std::vector<std::size_t> candPositions = candidates.positions.toIndices();
  std::map<std::vector<std::size_t>, std::size_t> atomIndex;
  std::vector<std::vector<std::size_t>> atomPositions;
  std::vector<std::size_t> atomOfPos(candPositions.size());
  std::vector<std::size_t> key(partitions.size());
  for (std::size_t i = 0; i < candPositions.size(); ++i) {
    const std::size_t pos = candPositions[i];
    for (std::size_t p = 0; p < partitions.size(); ++p) key[p] = groupOf(p, pos);
    const auto [it, inserted] = atomIndex.emplace(key, atomPositions.size());
    if (inserted) atomPositions.emplace_back();
    atomPositions[it->second].push_back(pos);
    atomOfPos[i] = it->second;
  }
  const std::size_t numAtoms = atomPositions.size();
  local.atoms = numAtoms;

  // One equation per failing group: XOR of member atoms' signatures equals the
  // observed group error signature. (Passing groups contain no candidate
  // positions, hence no atoms — their equations would be 0 = 0.)
  const unsigned degree = verdicts.signatureDegree;
  Gf2System system(numAtoms, degree);
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    for (std::size_t g = 0; g < partitions[p].groupCount(); ++g) {
      if (!verdicts.failing[p].test(g)) continue;
      BitVector coeffs(numAtoms);
      for (std::size_t a = 0; a < numAtoms; ++a) {
        // Atom membership is uniform across its positions; test the first.
        if (groupOf(p, atomPositions[a].front()) == g) coeffs.set(a);
      }
      BitVector rhs(degree);
      const std::uint64_t sig = verdicts.errorSig[p][g];
      for (unsigned bit = 0; bit < degree; ++bit) {
        if ((sig >> bit) & 1u) rhs.set(bit);
      }
      system.addEquation(coeffs, rhs);
    }
  }

  if (!system.reduce()) {
    // Inconsistent observations (MISR aliasing): pruning would be unsound.
    local.consistent = false;
    if (stats) *stats = local;
    return candidates;
  }

  CandidateSet pruned = candidates;
  for (std::size_t a = 0; a < numAtoms; ++a) {
    if (!system.forcedZero(a)) continue;
    ++local.prunedAtoms;
    for (std::size_t pos : atomPositions[a]) {
      pruned.positions.reset(pos);
      ++local.prunedPositions;
    }
  }
  pruned.cells = topology.expandPositions(pruned.positions);
  if (stats) *stats = local;
  return pruned;
}

}  // namespace

CandidateSet SuperpositionPruner::prune(const std::vector<Partition>& partitions,
                                        const GroupVerdicts& verdicts,
                                        const CandidateSet& candidates,
                                        PruneStats* stats) const {
  // Group-membership table per partition, rebuilt for this call only.
  std::vector<std::vector<std::size_t>> tables;
  tables.reserve(partitions.size());
  for (const Partition& p : partitions) tables.push_back(p.groupTable());
  return pruneWith(
      *topology_, partitions,
      [&](std::size_t p, std::size_t pos) { return tables[p][pos]; }, verdicts, candidates,
      stats);
}

CandidateSet SuperpositionPruner::prune(const PreparedPartitionSet& prepared,
                                        const GroupVerdicts& verdicts,
                                        const CandidateSet& candidates,
                                        PruneStats* stats) const {
  if (prepared.batchReady()) {
    // Transposed batch layout: a position's whole membership vector is one
    // contiguous read; global ids translate back with the partition offset.
    return pruneWith(
        *topology_, prepared.partitions(),
        [&](std::size_t p, std::size_t pos) {
          return static_cast<std::size_t>(prepared.groupsAtPosition(pos)[p]) -
                 prepared.groupOffset(p);
        },
        verdicts, candidates, stats);
  }
  return pruneWith(
      *topology_, prepared.partitions(),
      [&](std::size_t p, std::size_t pos) { return prepared.groupTable(p)[pos]; }, verdicts,
      candidates, stats);
}

}  // namespace scandiag
