// Superposition-based candidate pruning (in the spirit of Bayraktaroglu &
// Orailoglu [7]; see DESIGN.md §5 item 3 for the exact relationship).
//
// Because the MISR is linear, the observed error signature of every group is
// the XOR of the (unknown) per-cell error signatures of the failing cells it
// contains. Group membership is the only structure we have, so candidates
// are partitioned into *atoms*: maximal sets of positions that share group
// membership in every partition. Each atom contributes one unknown — the
// XOR of its cells' signatures — and each failing group one linear equation.
// Gaussian elimination over GF(2) then identifies atoms whose aggregate
// signature is FORCED to zero in every solution of the system; such atoms
// carry no error signal consistent with the observations and are pruned.
//
// Soundness: the true failure assignment satisfies the system, so a pruned
// atom's true aggregate signature is zero. That can hide a failing cell only
// if two or more failing cells in one atom have XOR-cancelling signatures —
// probability ~2^-degree per pair, which is why Exact-mode pruning defaults
// to a 32-bit side register (SessionConfig::pruneDegree).
#pragma once

#include "bist/scan_topology.hpp"
#include "diagnosis/candidate_analyzer.hpp"
#include "diagnosis/partition.hpp"
#include "diagnosis/prepared_partitions.hpp"
#include "diagnosis/session_engine.hpp"

namespace scandiag {

struct PruneStats {
  std::size_t atoms = 0;
  std::size_t prunedAtoms = 0;
  std::size_t prunedPositions = 0;
  bool consistent = true;  // false => aliasing detected, nothing pruned
};

class SuperpositionPruner {
 public:
  explicit SuperpositionPruner(const ScanTopology& topology) : topology_(&topology) {}

  /// Tightens `candidates` using the verdicts' error signatures (which must
  /// be present: SessionConfig::computeSignatures or MISR mode). Returns the
  /// pruned candidate set; `stats`, if non-null, receives diagnostics.
  /// Rebuilds each partition's group table per call — hot paths should use
  /// the PreparedPartitionSet overload.
  CandidateSet prune(const std::vector<Partition>& partitions, const GroupVerdicts& verdicts,
                     const CandidateSet& candidates, PruneStats* stats = nullptr) const;

  /// Hot-path overload: group membership comes from the prepared schedule
  /// (built once per pipeline) — the transposed batch layout when available,
  /// per-partition tables otherwise — with no per-fault setup at all. Output
  /// is bit-identical to the std::vector<Partition> overload.
  CandidateSet prune(const PreparedPartitionSet& prepared, const GroupVerdicts& verdicts,
                     const CandidateSet& candidates, PruneStats* stats = nullptr) const;

 private:
  const ScanTopology* topology_;
};

}  // namespace scandiag
