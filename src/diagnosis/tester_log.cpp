#include "diagnosis/tester_log.hpp"

#include <fstream>
#include <sstream>

#include "common/assert.hpp"
#include "common/errors.hpp"

namespace scandiag {

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw ParseError("session log", line, msg);
}

// Tester logs come from outside this process; a corrupted header must not be
// able to request a multi-terabyte verdict table. Real schedules are a few
// dozen partitions x a few hundred groups.
constexpr std::size_t kMaxPartitions = 1 << 16;
constexpr std::size_t kMaxGroups = 1 << 16;
constexpr std::size_t kMaxSessions = 1 << 24;

}  // namespace

TesterLog parseTesterLog(std::istream& in) {
  TesterLog log;
  bool sawHeader = false;
  std::size_t failingSessions = 0, failingWithSig = 0;
  std::string raw;
  int lineNo = 0;
  while (std::getline(in, raw)) {
    ++lineNo;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream is(raw);
    std::string keyword;
    if (!(is >> keyword)) continue;

    if (keyword == "sessions") {
      if (sawHeader) fail(lineNo, "duplicate sessions header");
      if (!(is >> log.numPartitions >> log.groupsPerPartition) || log.numPartitions == 0 ||
          log.groupsPerPartition == 0)
        fail(lineNo, "sessions needs positive <partitions> <groups>");
      if (log.numPartitions > kMaxPartitions || log.groupsPerPartition > kMaxGroups ||
          log.numPartitions * log.groupsPerPartition > kMaxSessions)
        fail(lineNo, "sessions header requests an implausibly large schedule");
      std::string trailing;
      if (is >> trailing) fail(lineNo, "unexpected trailing token '" + trailing + "'");
      sawHeader = true;
      log.verdicts.failing.assign(log.numPartitions, BitVector(log.groupsPerPartition));
      log.verdicts.errorSig.assign(log.numPartitions,
                                   std::vector<std::uint64_t>(log.groupsPerPartition, 0));
    } else if (keyword == "verdict") {
      if (!sawHeader) fail(lineNo, "verdict before sessions header");
      std::size_t p = 0, g = 0;
      std::string result;
      if (!(is >> p >> g >> result)) fail(lineNo, "verdict needs <partition> <group> pass|fail");
      if (p >= log.numPartitions || g >= log.groupsPerPartition)
        fail(lineNo, "verdict indices out of range");
      if (result == "fail") {
        log.verdicts.failing[p].set(g);
        ++failingSessions;
      } else if (result != "pass") {
        fail(lineNo, "verdict result must be pass or fail, got '" + result + "'");
      }
      std::string sigKeyword;
      if (is >> sigKeyword) {
        if (sigKeyword != "sig") fail(lineNo, "expected 'sig <hex>', got '" + sigKeyword + "'");
        std::string hex;
        if (!(is >> hex)) fail(lineNo, "sig needs a hex value");
        std::size_t consumed = 0;
        try {
          log.verdicts.errorSig[p][g] = std::stoull(hex, &consumed, 16);
        } catch (const std::exception&) {
          fail(lineNo, "bad hex signature '" + hex + "'");
        }
        if (consumed != hex.size()) fail(lineNo, "bad hex signature '" + hex + "'");
        if (result == "fail") ++failingWithSig;
        std::string trailing;
        if (is >> trailing) fail(lineNo, "unexpected trailing token '" + trailing + "'");
      }
    } else {
      fail(lineNo, "unknown keyword '" + keyword + "'");
    }
  }
  if (!sawHeader) fail(lineNo, "missing sessions header");
  // Signatures are usable for pruning only when every failing session has one
  // (a failing session with an unknown signature would make the GF(2) system
  // fictitious).
  log.verdicts.hasSignatures = failingSessions > 0 && failingWithSig == failingSessions;
  log.verdicts.signatureDegree = log.verdicts.hasSignatures ? 64 : 0;
  return log;
}

TesterLog parseTesterLogString(const std::string& text) {
  std::istringstream in(text);
  return parseTesterLog(in);
}

TesterLog parseTesterLogFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw FileNotFoundError(path);
  return parseTesterLog(in);
}

std::string writeTesterLog(const GroupVerdicts& verdicts) {
  SCANDIAG_REQUIRE(!verdicts.failing.empty(), "no sessions to write");
  std::ostringstream os;
  os << "# scandiag session log\n";
  os << "sessions " << verdicts.failing.size() << ' ' << verdicts.failing[0].size() << "\n";
  for (std::size_t p = 0; p < verdicts.failing.size(); ++p) {
    for (std::size_t g = 0; g < verdicts.failing[p].size(); ++g) {
      if (!verdicts.failing[p].test(g)) continue;
      os << "verdict " << p << ' ' << g << " fail";
      if (verdicts.hasSignatures) {
        os << " sig " << std::hex << verdicts.errorSig[p][g] << std::dec;
      }
      os << "\n";
    }
  }
  return os.str();
}

CandidateSet diagnoseFromLog(const ScanTopology& topology, const DiagnosisConfig& config,
                             const TesterLog& log) {
  SCANDIAG_REQUIRE(log.numPartitions == config.numPartitions &&
                       log.groupsPerPartition == config.groupsPerPartition,
                   "log session shape does not match the diagnosis configuration");
  const std::vector<Partition> partitions =
      buildPartitions(config, topology.maxChainLength());
  const CandidateAnalyzer analyzer(topology);
  CandidateSet candidates = analyzer.analyze(partitions, log.verdicts);
  if (config.pruning && log.verdicts.hasSignatures) {
    const SuperpositionPruner pruner(topology);
    candidates = pruner.prune(partitions, log.verdicts, candidates);
  }
  return candidates;
}

}  // namespace scandiag
