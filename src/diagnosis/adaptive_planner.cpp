#include "diagnosis/adaptive_planner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace scandiag {

namespace {

/// Largest power of two <= n (n >= 1). Random selection labels are bit
/// fields, so every pool group count is normalized to a power of two — the
/// same shape recommendGroupCount() produces.
std::size_t floorPow2(std::size_t n) {
  std::size_t p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

/// Seed of random-selection stream k: the base seed advanced by k odd
/// strides, masked to the LFSR width and bumped off the stuck all-zero state.
/// Stream 0 is the base seed itself — identical to the fixed schemes' stream.
std::uint64_t poolSeed(std::uint64_t base, std::size_t k, unsigned degree) {
  const std::uint64_t mask = degree >= 64 ? ~0ULL : ((std::uint64_t{1} << degree) - 1);
  const std::uint64_t s = (base + 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(k)) & mask;
  return s == 0 ? 1 : s;
}

}  // namespace

AdaptivePlanner::AdaptivePlanner(const ScanTopology& topology, const DiagnosisConfig& config)
    : topology_(&topology), config_(config), engine_(topology, sessionConfigFor(config)) {
  if (config.scheme != SchemeKind::Adaptive) {
    throw std::invalid_argument("AdaptivePlanner requires scheme == adaptive");
  }
  if (config.pruning) {
    throw std::invalid_argument(
        "superposition pruning is incompatible with the adaptive scheme: pruning needs the "
        "XOR-signature algebra of a schedule fixed up front");
  }
  const AdaptivePoolConfig& opts = config.schemeConfig.adaptive;
  const std::size_t chainLength = topology.maxChainLength();
  SCANDIAG_REQUIRE(chainLength >= 1, "empty selection axis");

  budget_ = opts.sessionBudget != 0 ? opts.sessionBudget
                                    : config.numPartitions * config.groupsPerPartition;
  SCANDIAG_REQUIRE(budget_ >= 1, "adaptive session budget must be positive");

  std::vector<Partition> candidates;
  if (opts.forceFixedOrder) {
    // Parity mode: the pool *is* the fixed TwoStep schedule, taken in order.
    auto scheme = makeScheme(SchemeKind::TwoStep, config.schemeConfig, chainLength,
                             config.groupsPerPartition);
    candidates = takePartitions(*scheme, config.numPartitions);
    kinds_.assign(candidates.size(), PoolKind::Random);
    for (std::size_t p = 0; p < std::min(config.schemeConfig.intervalPartitions, kinds_.size());
         ++p) {
      kinds_[p] = PoolKind::Interval;
    }
  } else {
    if (opts.intervalCandidates == 0 && opts.seedPool == 0) {
      throw std::invalid_argument("adaptive pool is empty: need interval or random candidates");
    }
    // Group counts, clamped to the chain and normalized to powers of two
    // (random-selection labels are bit fields), deduplicated in order.
    std::vector<std::size_t> groupCounts;
    const std::vector<std::size_t> requested =
        opts.groupCandidates.empty() ? std::vector<std::size_t>{config.groupsPerPartition}
                                     : opts.groupCandidates;
    std::size_t minGroups = chainLength;
    for (std::size_t g : requested) {
      const std::size_t clamped = floorPow2(std::max<std::size_t>(std::min(g, chainLength), 1));
      if (std::find(groupCounts.begin(), groupCounts.end(), clamped) != groupCounts.end()) {
        continue;
      }
      groupCounts.push_back(clamped);
      minGroups = std::min(minGroups, clamped);
    }
    // Enough random candidates per stream that the pool never runs dry before
    // the budget does, whatever the scorer picks.
    const std::size_t maxSteps = std::max<std::size_t>(budget_ / std::max<std::size_t>(minGroups, 1), 1);
    for (std::size_t g : groupCounts) {
      IntervalPartitioner intervals(
          IntervalPartitionerConfig{config.schemeConfig.lfsr, config.schemeConfig.rlen,
                                    config.schemeConfig.intervalStartSeed},
          chainLength, g);
      for (std::size_t i = 0; i < opts.intervalCandidates; ++i) {
        candidates.push_back(intervals.next());
        kinds_.push_back(PoolKind::Interval);
      }
      for (std::size_t k = 0; k < opts.seedPool; ++k) {
        RandomSelectionPartitioner randoms(
            RandomSelectionConfig{
                config.schemeConfig.lfsr,
                poolSeed(config.schemeConfig.randomSeed, k, config.schemeConfig.lfsr.degree)},
            chainLength, g);
        for (std::size_t i = 0; i < maxSteps; ++i) {
          candidates.push_back(randoms.next());
          kinds_.push_back(PoolKind::Random);
        }
      }
    }
  }
  pool_ = PreparedPartitionSet(std::move(candidates));
  SCANDIAG_REQUIRE(pool_.batchReady(), "adaptive pool must have the batch layout");
}

double AdaptivePlanner::scoreCandidate(std::size_t index, const std::vector<std::uint32_t>& counts,
                                       std::size_t n, std::size_t spread,
                                       bool observedAnything) const {
  const std::size_t off = pool_.groupOffset(index);
  const std::size_t b = pool_.partition(index).groupCount();
  const double dn = static_cast<double>(n);
  // Interval groups are contiguous runs of shift positions, and real
  // multi-cell faults cluster in adjacent cells (the paper's §2.2 argument
  // for putting the interval step first): a clustered burst lands in one
  // interval group, not `spread` independent ones. Interval candidates are
  // therefore scored with an effective spread of 1 — the uniform model below
  // would otherwise punish their (often unbalanced) group sizes with a
  // per-position independence assumption that contiguity refutes.
  const std::size_t effSpread = kinds_[index] == PoolKind::Interval ? 1 : spread;
  // Expected survivors: group j (c_j of the n surviving positions) stays in
  // the intersection iff it holds a failing position; with `effSpread`
  // failing positions drawn uniformly from S that happens with
  // 1 - (1 - c_j/n)^effSpread. The power is expanded by repeated
  // multiplication — exact IEEE ops, so the score (and every schedule
  // decision) is bit-reproducible.
  double expected = 0.0;
  for (std::size_t g = 0; g < b; ++g) {
    const double c = static_cast<double>(counts[off + g]);
    if (c == 0.0) continue;
    const double miss = 1.0 - c / dn;
    double staysEmpty = 1.0;
    for (std::size_t w = 0; w < effSpread; ++w) staysEmpty *= miss;
    expected += c * (1.0 - staysEmpty);
  }
  const double gain = std::log2(dn) - std::log2(std::max(expected, 1.0));
  if (gain <= 1e-12) return 0.0;  // provably cannot shrink S (one group holds all of it)
  double score = gain / static_cast<double>(b);
  if (!observedAnything && kinds_[index] == PoolKind::Interval) {
    // Blind first pick: the uniform model cannot see that fault cones cluster
    // on the chain (paper §2.2) — intervals get the clustering prior.
    score += config_.schemeConfig.adaptive.intervalPrior;
  }
  return score;
}

AdaptiveOutcome AdaptivePlanner::run(const FaultResponse& response,
                                     const RowObserver& observer) const {
  const AdaptivePoolConfig& opts = config_.schemeConfig.adaptive;
  const std::size_t length = topology_->maxChainLength();
  const std::size_t poolSize = pool_.size();

  AdaptiveOutcome out;
  out.sessionBudget = budget_;
  BitVector survivors(length, true);
  std::vector<char> used(poolSize, 0);
  std::vector<std::uint32_t> counts(pool_.totalGroups());
  const std::size_t spreadPrior = std::clamp<std::size_t>(opts.spreadPrior, 1, 64);
  std::size_t observedSpread = 0;  // max failing-group count seen; 0 = nothing yet
  std::uint64_t pruned = 0;

  for (;;) {
    const std::size_t before = survivors.count();
    std::size_t pick = BitVector::npos;
    if (opts.forceFixedOrder) {
      // Parity mode: the fixed schedule, in order, while the budget lasts.
      const std::size_t next = out.chosen.size();
      if (next >= poolSize) break;
      if (out.sessionsUsed + pool_.partition(next).groupCount() > budget_) break;
      pick = next;
    } else {
      if (before <= 1) break;  // partitions act on positions; nothing left to split
      // One pass over S scores every candidate: the transposed batch layout
      // gives each position's group in every pool partition contiguously.
      std::fill(counts.begin(), counts.end(), 0);
      for (std::size_t pos = survivors.findFirst(); pos != BitVector::npos;
           pos = survivors.findNext(pos)) {
        const std::uint32_t* groups = pool_.groupsAtPosition(pos);
        for (std::size_t j = 0; j < poolSize; ++j) ++counts[groups[j]];
      }
      const std::size_t spread = observedSpread > 0 ? observedSpread : spreadPrior;
      double bestScore = 0.0;
      for (std::size_t i = 0; i < poolSize; ++i) {
        if (used[i]) continue;
        if (out.sessionsUsed + pool_.partition(i).groupCount() > budget_) continue;
        const double score = scoreCandidate(i, counts, before, spread, observedSpread > 0);
        if (score > bestScore) {  // ties resolve to the lowest pool index
          bestScore = score;
          pick = i;
        }
      }
      if (pick == BitVector::npos) break;  // nothing affordable can shrink S: stop, save budget
    }

    used[pick] = 1;
    PartitionVerdictRow row = engine_.runPartition(pool_, pick, response);
    if (observer) observer(out.chosen.size(), pick, row);
    observedSpread = std::max<std::size_t>(observedSpread, std::max<std::size_t>(row.failing.count(), 1));

    const Partition& partition = pool_.partition(pick);
    BitVector failingUnion(length);
    for (std::size_t g = 0; g < partition.groupCount(); ++g) {
      if (row.failing.test(g)) failingUnion |= partition.groups[g];
    }
    survivors &= failingUnion;

    const std::size_t after = survivors.count();
    pruned += static_cast<std::uint64_t>(before - after);
    out.sessionsUsed += partition.groupCount();
    out.chosen.push_back(pick);
    out.verdicts.failing.push_back(std::move(row.failing));
    out.steps.push_back(AdaptiveStepTrace{pick, partition.groupCount(), out.sessionsUsed, after,
                                          topology_->expandPositions(survivors).count()});
  }

  if (pruned > 0) obs::count(obs::Counter::AdaptiveCandidatesPruned, pruned);
  if (out.sessionsUsed < budget_) {
    obs::count(obs::Counter::AdaptiveSessionsSaved,
               static_cast<std::uint64_t>(budget_ - out.sessionsUsed));
  }
  out.candidates.cells = topology_->expandPositions(survivors);
  out.candidates.positions = std::move(survivors);
  return out;
}

std::vector<Partition> AdaptivePlanner::schedule(const AdaptiveOutcome& outcome) const {
  std::vector<Partition> partitions;
  partitions.reserve(outcome.chosen.size());
  for (const std::size_t index : outcome.chosen) partitions.push_back(pool_.partition(index));
  return partitions;
}

}  // namespace scandiag
