// End-to-end diagnosis pipeline and experiment drivers.
//
// DiagnosisPipeline binds a scan topology to a fully-specified diagnosis
// configuration (scheme, partition/group counts, signature mode, pruning) and
// turns FaultResponses into candidate sets and DR reports. Partitions are
// built once per pipeline — the hardware applies the same partition sequence
// to every device — and reused for all faults, so evaluating another scheme
// or partition budget on the same fault-simulation data is cheap.
//
// prepareWorkload() packages the front half of every experiment in the paper:
// generate patterns, pick 500 detected stuck-at faults, fault-simulate them
// into responses (see DESIGN.md §3 for the per-table parameters).
#pragma once

#include <memory>
#include <vector>

#include "bist/prpg.hpp"
#include "common/watchdog.hpp"
#include "diagnosis/candidate_analyzer.hpp"
#include "diagnosis/metrics.hpp"
#include "diagnosis/prepared_partitions.hpp"
#include "diagnosis/session_engine.hpp"
#include "diagnosis/superposition_pruner.hpp"
#include "diagnosis/two_step_scheme.hpp"

namespace scandiag {

struct DiagnosisConfig {
  SchemeKind scheme = SchemeKind::TwoStep;
  std::size_t numPartitions = 8;
  std::size_t groupsPerPartition = 16;
  SchemeConfig schemeConfig{};
  SignatureMode mode = SignatureMode::Exact;
  bool pruning = false;
  std::size_t numPatterns = 128;
  unsigned misrDegree = 16;
  std::uint64_t misrTapMask = 0;
  unsigned pruneDegree = 32;
  /// False forces the per-session reference scorer everywhere (parity tests,
  /// A/B benches); the diagnosis output is bit-identical either way.
  bool batchedScoring = true;
};

struct FaultDiagnosis {
  CandidateSet candidates;
  std::size_t candidateCount = 0;
  std::size_t actualCount = 0;
  /// Sessions actually run for this fault. 0 on the fixed schemes (their
  /// count is the static numPartitions * groupsPerPartition); the adaptive
  /// scheme reports its data-dependent spend here (CostModel::adaptiveRunCost).
  std::size_t sessionsSpent = 0;
};

class AdaptivePlanner;

class DiagnosisPipeline {
 public:
  DiagnosisPipeline(const ScanTopology& topology, const DiagnosisConfig& config);
  ~DiagnosisPipeline();
  DiagnosisPipeline(DiagnosisPipeline&&) = default;
  DiagnosisPipeline& operator=(DiagnosisPipeline&&) = default;

  /// Empty for SchemeKind::Adaptive (the schedule is chosen online per fault;
  /// see adaptive()).
  const std::vector<Partition>& partitions() const { return prepared_.partitions(); }
  /// The pre-indexed schedule (group tables built once at construction);
  /// shared read-only with the resilience layer and across pool workers.
  const PreparedPartitionSet& prepared() const { return prepared_; }
  const DiagnosisConfig& config() const { return config_; }
  const ScanTopology& topology() const { return *topology_; }
  /// Exposed for the resilience layer (src/inject): retry re-runs go through
  /// the same engine; checked analysis through the same analyzer.
  const SessionEngine& engine() const { return engine_; }
  const CandidateAnalyzer& analyzer() const { return analyzer_; }
  /// Non-null iff config().scheme == SchemeKind::Adaptive: the online
  /// entropy-greedy scheduler the diagnose/evaluate entry points route
  /// through (see adaptive_planner.hpp).
  const AdaptivePlanner* adaptive() const { return adaptive_.get(); }

  /// Diagnoses one fault: sessions → inclusion-exclusion → optional pruning.
  FaultDiagnosis diagnose(const FaultResponse& response) const;

  /// diagnose() minus the phase timers, plus an FNV-1a digest of the
  /// per-partition group verdicts written to `verdictDigest` — the audit
  /// fingerprint the checkpoint layer journals with each completed fault.
  FaultDiagnosis diagnoseDigested(const FaultResponse& response,
                                  std::uint64_t* verdictDigest) const;

  /// DR over a set of detected-fault responses. `control` is polled at
  /// fault granularity; a trip unwinds as OperationCancelled (the default
  /// RunControl is inert — identical cost and output to before).
  DrReport evaluate(const std::vector<FaultResponse>& responses,
                    const RunControl& control = {}) const;

  /// DR after each partition-count prefix 1..numPartitions (pruning is not
  /// applied — matches the paper's Figure 5 protocol "without pruning").
  /// `control` is polled at fault granularity, as in evaluate().
  /// For the adaptive scheme, prefix p reads the greedy trajectory at session
  /// budget (p+1) * groupsPerPartition — the planner's anytime curve, not a
  /// re-run per budget (identical by construction for uniform group counts).
  std::vector<double> evaluateSweep(const std::vector<FaultResponse>& responses,
                                    const RunControl& control = {}) const;

 private:
  /// diagnose() without the phase timers — the batch loop body of evaluate /
  /// evaluateSweep, where per-fault clock reads would dominate (counters,
  /// the deterministic section, are identical to diagnose()). `scratch`
  /// (optional) is the calling worker's private batch-scorer buffers, reused
  /// across the faults of its chunk.
  FaultDiagnosis diagnoseUntimed(const FaultResponse& response,
                                 SessionBatchScratch* scratch = nullptr) const;
  /// The adaptive-scheme body behind diagnose/diagnoseUntimed/diagnoseDigested
  /// (the greedy loop replaces the run-schedule-then-intersect pipeline).
  FaultDiagnosis adaptiveDiagnose(const FaultResponse& response,
                                  std::uint64_t* verdictDigest) const;

  const ScanTopology* topology_;
  DiagnosisConfig config_;
  PreparedPartitionSet prepared_;
  SessionEngine engine_;
  CandidateAnalyzer analyzer_;
  SuperpositionPruner pruner_;
  std::unique_ptr<AdaptivePlanner> adaptive_;  // non-null iff scheme == Adaptive
};

/// Builds the partition sequence a config implies (exposed for tests/benches).
/// Throws std::invalid_argument for SchemeKind::Adaptive, which has no fixed
/// sequence — its schedule is chosen online per fault.
std::vector<Partition> buildPartitions(const DiagnosisConfig& config, std::size_t chainLength);

/// The SessionConfig a DiagnosisConfig implies — shared by DiagnosisPipeline
/// and AdaptivePlanner so both run sessions under identical settings.
SessionConfig sessionConfigFor(const DiagnosisConfig& config);

// ---------------------------------------------------------------------------
// Workload preparation (pattern generation + fault selection + fault sim).

struct WorkloadConfig {
  std::size_t numPatterns = 128;
  std::size_t numFaults = 500;
  std::uint64_t faultSeed = 0xFA17;
  PrpgConfig prpg{};
};

struct CircuitWorkload {
  ScanTopology topology;
  /// Detected faults only; size <= numFaults.
  std::vector<FaultResponse> responses;
  std::size_t patternsApplied = 0;
};

/// Full-scan `netlist` with `numChains` balanced block chains; samples from
/// the collapsed fault universe until `numFaults` detected faults are found
/// (or the universe is exhausted).
CircuitWorkload prepareWorkload(const Netlist& netlist, const WorkloadConfig& config,
                                std::size_t numChains = 1);

}  // namespace scandiag
