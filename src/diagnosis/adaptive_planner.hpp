// Adaptive online partition planning (entropy-greedy session scheduling).
//
// The fixed schemes commit to their whole partition schedule before the first
// session runs, yet the tester learns a verdict row after every partition —
// information the fixed schedule throws away. AdaptivePlanner closes that
// loop per fault:
//
//   1. A *candidate pool* of partitions is built once per pipeline (interval
//      partitions with successive covering seeds, plus random-selection
//      partitions from a small deterministic seed pool, per candidate group
//      count) and prepared like any fixed schedule, so scoring can use the
//      transposed position→group batch layout.
//   2. Per fault, the surviving-candidate position set S starts as the whole
//      selection axis. Each step scores every unchosen, affordable pool
//      candidate by the expected log-reduction of S — the entropy view: a
//      partition splitting S into groups of c_1..c_b survivors is expected to
//      keep E = Σ_j c_j·(1 − (1 − c_j/n)^w) of the n = |S| positions, where w
//      estimates how many failing positions the fault spreads over (max
//      failing-group count observed so far; spreadPrior before the first
//      observation). Score = (log2(n) − log2(E)) / sessions, so information
//      is charged per session exactly as CostModel charges tester time.
//   3. The best candidate (ties → lowest pool index) is run through
//      SessionEngine::runPartition, its failing-group union intersects S, and
//      the loop repeats until S cannot shrink (≤ 1 position, or no candidate
//      scores positive — the remaining budget is *saved*), or the session
//      budget is exhausted.
//
// Determinism: the pool, the scores, and therefore the chosen schedule are
// pure functions of (config, fault response) — independent of thread count
// and evaluation order, so DR reports and the adaptive counters stay
// bit-identical at any thread count (the repo-wide ordered-reduction
// contract). Superposition pruning is rejected for this scheme: pruning needs
// the XOR-signature algebra of a schedule fixed up front.
//
// See docs/ARCHITECTURE.md §14 for the contract and the DR-vs-sessions
// results (bench_adaptive).
#pragma once

#include <functional>
#include <vector>

#include "diagnosis/candidate_analyzer.hpp"
#include "diagnosis/experiment_driver.hpp"
#include "diagnosis/prepared_partitions.hpp"
#include "diagnosis/session_engine.hpp"

namespace scandiag {

/// One executed step of an adaptive schedule.
struct AdaptiveStepTrace {
  std::size_t poolIndex = 0;           // which pool candidate ran
  std::size_t sessions = 0;            // its group count (sessions charged)
  std::size_t cumulativeSessions = 0;  // spent through this step
  std::size_t survivorPositions = 0;   // |S| after intersecting its verdicts
  std::size_t survivorCells = 0;       // expandPositions(S).count() after
};

/// Result of running the adaptive loop for one fault. `verdicts` rows align
/// with `chosen` (step order), so recovery/analysis over the realized
/// schedule works exactly as for a fixed one.
struct AdaptiveOutcome {
  CandidateSet candidates;
  GroupVerdicts verdicts;
  std::vector<std::size_t> chosen;  // pool indices, step order
  std::vector<AdaptiveStepTrace> steps;
  std::size_t sessionsUsed = 0;
  std::size_t sessionBudget = 0;
};

class AdaptivePlanner {
 public:
  /// Observes (and may corrupt, on the noisy path) each verdict row as it is
  /// produced — the planner then decides on the *observed* row, exactly as a
  /// scheduler driving a real tester would. `step` is the 0-based step
  /// ordinal (the noise-stream partition index of the realized schedule).
  using RowObserver =
      std::function<void(std::size_t step, std::size_t poolIndex, PartitionVerdictRow& row)>;

  /// Builds the candidate pool for `config` (scheme must be Adaptive; throws
  /// std::invalid_argument otherwise, or when pruning is requested).
  AdaptivePlanner(const ScanTopology& topology, const DiagnosisConfig& config);

  /// The prepared candidate pool (index space of AdaptiveOutcome::chosen).
  const PreparedPartitionSet& pool() const { return pool_; }
  std::size_t sessionBudget() const { return budget_; }
  const SessionEngine& engine() const { return engine_; }

  /// Runs the greedy loop for one fault. Deterministic for a given response
  /// and observer behavior; the observer may be null.
  AdaptiveOutcome run(const FaultResponse& response, const RowObserver& observer = {}) const;

  /// The realized schedule of an outcome as a plain partition list (copies of
  /// the chosen pool entries), for recovery and analyzer entry points.
  std::vector<Partition> schedule(const AdaptiveOutcome& outcome) const;

 private:
  /// Pool candidate kind, for the uninformed-first-pick interval prior.
  enum class PoolKind { Interval, Random };

  double scoreCandidate(std::size_t index, const std::vector<std::uint32_t>& counts,
                        std::size_t n, std::size_t spread, bool observedAnything) const;

  const ScanTopology* topology_;
  DiagnosisConfig config_;
  PreparedPartitionSet pool_;
  std::vector<PoolKind> kinds_;  // parallel to pool_.partitions()
  std::size_t budget_ = 0;
  SessionEngine engine_;
};

}  // namespace scandiag
