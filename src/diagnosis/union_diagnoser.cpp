#include "diagnosis/union_diagnoser.hpp"

#include <algorithm>
#include <functional>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace scandiag {

namespace {

/// Mean prior weight over [lo, hi); 0 for an empty prior (uniform order).
double meanWeight(const std::vector<double>& prior, std::size_t lo, std::size_t hi) {
  if (prior.empty() || hi <= lo) return 0.0;
  double sum = 0.0;
  for (std::size_t i = lo; i < hi; ++i) sum += prior[i];
  return sum / static_cast<double>(hi - lo);
}

void setRange(BitVector& bits, std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) bits.set(i);
}

}  // namespace

UnionRefinement UnionDiagnoser::refine(const BitVector& candidatePositions,
                                       const std::vector<double>& adiPrior,
                                       const IntervalOracle& oracle) const {
  const std::size_t length = topology_->maxChainLength();
  SCANDIAG_REQUIRE(candidatePositions.size() == length,
                   "candidate positions do not match the selection axis");
  SCANDIAG_REQUIRE(adiPrior.empty() || adiPrior.size() == length,
                   "ADI prior does not match the selection axis");

  UnionRefinement out;
  out.confirmed = BitVector(length);
  out.exonerated = BitVector(length);
  out.unresolved = BitVector(length);

  // Maximal contiguous candidate segments, queried whole first (the
  // set-cover step), highest mean ADI first so the likeliest accidental
  // survivors are spent budget on before the tail.
  struct Segment {
    std::size_t lo, hi;
    double weight;
  };
  std::vector<Segment> segments;
  std::size_t lo = BitVector::npos;
  for (std::size_t i = 0; i <= length; ++i) {
    const bool inCand = i < length && candidatePositions.test(i);
    if (inCand && lo == BitVector::npos) lo = i;
    if (!inCand && lo != BitVector::npos) {
      segments.push_back({lo, i, meanWeight(adiPrior, lo, i)});
      lo = BitVector::npos;
    }
  }
  std::stable_sort(segments.begin(), segments.end(), [](const Segment& a, const Segment& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.lo < b.lo;
  });

  const std::function<void(std::size_t, std::size_t, bool)> visit =
      [&](std::size_t vlo, std::size_t vhi, bool knownFailing) {
        if (!knownFailing) {
          if (out.sessions >= config_.sessionBudget) {
            setRange(out.unresolved, vlo, vhi);
            return;
          }
          ++out.sessions;
          if (!oracle(vlo, vhi, 0)) {
            setRange(out.exonerated, vlo, vhi);
            return;
          }
        }
        if (vhi - vlo == 1) {
          out.confirmed.set(vlo);
          return;
        }
        ++out.splits;
        const std::size_t mid = vlo + (vhi - vlo) / 2;
        // ADI decides which half to query; the other half is inferred
        // failing on a pass (the parent failed) and queried otherwise (with
        // k faults both halves can fail — no single-fault inference).
        const bool rightFirst =
            meanWeight(adiPrior, mid, vhi) > meanWeight(adiPrior, vlo, mid);
        const std::size_t qlo = rightFirst ? mid : vlo;
        const std::size_t qhi = rightFirst ? vhi : mid;
        const std::size_t olo = rightFirst ? vlo : mid;
        const std::size_t ohi = rightFirst ? mid : vhi;
        if (out.sessions >= config_.sessionBudget) {
          setRange(out.unresolved, vlo, vhi);
          return;
        }
        ++out.sessions;
        if (oracle(qlo, qhi, 0)) {
          visit(qlo, qhi, /*knownFailing=*/true);
          visit(olo, ohi, /*knownFailing=*/false);
        } else {
          setRange(out.exonerated, qlo, qhi);
          visit(olo, ohi, /*knownFailing=*/true);
        }
      };

  for (const Segment& seg : segments) visit(seg.lo, seg.hi, /*knownFailing=*/false);

  if (out.splits > 0) obs::count(obs::Counter::UnionSplits, out.splits);
  out.candidates.positions = out.confirmed | out.unresolved;
  out.candidates.cells = topology_->expandPositions(out.candidates.positions);
  out.complete = out.unresolved.none();
  bool inRun = false;
  for (std::size_t i = 0; i < length; ++i) {
    const bool c = out.confirmed.test(i);
    if (c && !inRun) ++out.failingClusters;
    inRun = c;
  }
  out.withinFaultBudget = out.failingClusters <= config_.maxFaults;
  out.cost = repeatedSessionsCost(out.sessions, numPatterns_, topology_->maxChainLength());
  return out;
}

std::vector<double> adiPriorFromGoodCaptures(const ScanTopology& topology,
                                             const std::vector<BitVector>& goodCaptures) {
  SCANDIAG_REQUIRE(goodCaptures.size() == topology.numCells(),
                   "good captures do not match the topology");
  std::vector<double> prior(topology.maxChainLength(), 0.0);
  for (std::size_t cell = 0; cell < goodCaptures.size(); ++cell) {
    const BitVector& stream = goodCaptures[cell];
    if (stream.size() < 2) continue;
    std::size_t transitions = 0;
    for (std::size_t t = 1; t < stream.size(); ++t) {
      if (stream.test(t) != stream.test(t - 1)) ++transitions;
    }
    prior[topology.location(cell).position] +=
        static_cast<double>(transitions) / static_cast<double>(stream.size() - 1);
  }
  return prior;
}

}  // namespace scandiag
