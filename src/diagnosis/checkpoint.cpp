#include "diagnosis/checkpoint.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace scandiag {

namespace {

void putU16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void putU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void putU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

class Cursor {
 public:
  explicit Cursor(const std::string& bytes) : bytes_(&bytes) {}

  std::uint16_t u16() { return static_cast<std::uint16_t>(uint(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(uint(4)); }
  std::uint64_t u64() { return uint(8); }
  std::size_t remaining() const { return bytes_->size() - pos_; }
  bool exhausted() const { return pos_ == bytes_->size(); }

 private:
  std::uint64_t uint(std::size_t width) {
    if (bytes_->size() - pos_ < width) {
      throw JournalCorruptError("checkpoint: fault record payload is short");
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < width; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>((*bytes_)[pos_ + i]))
           << (8 * i);
    }
    pos_ += width;
    return v;
  }

  const std::string* bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string encodeFaultRecord(const FaultRecord& record) {
  std::string out;
  out.reserve(40 + record.counterDeltas.size() * 10);
  putU64(out, record.sweepId);
  putU32(out, record.faultIndex);
  putU64(out, record.candidateCount);
  putU64(out, record.actualCount);
  putU64(out, record.verdictDigest);
  putU32(out, static_cast<std::uint32_t>(record.counterDeltas.size()));
  for (const auto& [counter, delta] : record.counterDeltas) {
    putU16(out, counter);
    putU64(out, delta);
  }
  return out;
}

FaultRecord decodeFaultRecord(const std::string& payload) {
  Cursor cur(payload);
  FaultRecord record;
  record.sweepId = cur.u64();
  record.faultIndex = cur.u32();
  record.candidateCount = cur.u64();
  record.actualCount = cur.u64();
  record.verdictDigest = cur.u64();
  const std::uint32_t deltas = cur.u32();
  // Each delta entry is 10 bytes (u16 counter + u64 value); a count the
  // remaining payload cannot hold is corruption — reject it before sizing
  // an allocation from the untrusted field.
  if (deltas > cur.remaining() / 10) {
    throw JournalCorruptError("checkpoint: fault record claims " +
                              std::to_string(deltas) + " counter deltas but only " +
                              std::to_string(cur.remaining()) + " bytes remain");
  }
  record.counterDeltas.reserve(deltas);
  for (std::uint32_t i = 0; i < deltas; ++i) {
    const std::uint16_t counter = cur.u16();
    const std::uint64_t delta = cur.u64();
    if (counter >= obs::kNumCounters) {
      throw JournalCorruptError("checkpoint: fault record names counter index " +
                                std::to_string(counter) + " (registry has " +
                                std::to_string(obs::kNumCounters) + ")");
    }
    record.counterDeltas.emplace_back(counter, delta);
  }
  if (!cur.exhausted()) {
    throw JournalCorruptError("checkpoint: fault record has trailing bytes");
  }
  return record;
}

std::string encodeShardMetaRecord(const ShardMetaRecord& record) {
  std::string out;
  out.reserve(20 + record.socSpec.size());
  putU32(out, record.shardIndex);
  putU32(out, record.shardCount);
  putU64(out, record.baseDigest);
  putU32(out, static_cast<std::uint32_t>(record.socSpec.size()));
  out.append(record.socSpec);
  return out;
}

ShardMetaRecord decodeShardMetaRecord(const std::string& payload) {
  Cursor cur(payload);
  ShardMetaRecord record;
  record.shardIndex = cur.u32();
  record.shardCount = cur.u32();
  record.baseDigest = cur.u64();
  const std::uint32_t specLen = cur.u32();
  if (specLen != cur.remaining()) {
    throw JournalCorruptError("checkpoint: shard meta claims a " + std::to_string(specLen) +
                              "-byte spec but " + std::to_string(cur.remaining()) +
                              " bytes remain");
  }
  record.socSpec = payload.substr(payload.size() - specLen);
  if (record.shardCount == 0 || record.shardIndex >= record.shardCount) {
    throw JournalCorruptError("checkpoint: shard meta names shard " +
                              std::to_string(record.shardIndex) + " of " +
                              std::to_string(record.shardCount));
  }
  return record;
}

std::string encodeSweepManifestRecord(const SweepManifestRecord& record) {
  std::string out;
  out.reserve(32 + record.className.size());
  putU64(out, record.sweepId);
  putU64(out, record.classHash);
  putU32(out, record.classOrdinal);
  putU32(out, record.responseCount);
  putU32(out, record.instanceCount);
  putU32(out, static_cast<std::uint32_t>(record.className.size()));
  out.append(record.className);
  return out;
}

SweepManifestRecord decodeSweepManifestRecord(const std::string& payload) {
  Cursor cur(payload);
  SweepManifestRecord record;
  record.sweepId = cur.u64();
  record.classHash = cur.u64();
  record.classOrdinal = cur.u32();
  record.responseCount = cur.u32();
  record.instanceCount = cur.u32();
  const std::uint32_t nameLen = cur.u32();
  if (nameLen != cur.remaining()) {
    throw JournalCorruptError("checkpoint: sweep manifest claims a " +
                              std::to_string(nameLen) + "-byte name but " +
                              std::to_string(cur.remaining()) + " bytes remain");
  }
  record.className = payload.substr(payload.size() - nameLen);
  return record;
}

std::uint64_t setupDigestPiece(const std::string& name, std::uint64_t value,
                               std::uint64_t digest) {
  return fnv1a64(value, fnv1a64(name, digest));
}

std::uint64_t setupDigestPiece(const std::string& name, const std::string& value,
                               std::uint64_t digest) {
  return fnv1a64(value, fnv1a64(name, digest));
}

std::uint64_t sweepIdFor(const DiagnosisConfig& config) {
  std::uint64_t d = fnv1a64(std::string("sweep"));
  d = setupDigestPiece("scheme", static_cast<std::uint64_t>(config.scheme), d);
  d = setupDigestPiece("partitions", config.numPartitions, d);
  d = setupDigestPiece("groups", config.groupsPerPartition, d);
  d = setupDigestPiece("mode", static_cast<std::uint64_t>(config.mode), d);
  d = setupDigestPiece("pruning", config.pruning ? 1 : 0, d);
  d = setupDigestPiece("patterns", config.numPatterns, d);
  d = setupDigestPiece("misr_degree", config.misrDegree, d);
  d = setupDigestPiece("misr_taps", config.misrTapMask, d);
  d = setupDigestPiece("prune_degree", config.pruneDegree, d);
  return d;
}

SweepCheckpoint::SweepCheckpoint(const std::string& path, std::uint64_t setupDigest,
                                 const std::string& setupInfo, bool resume) {
  if (!resume) {
    writer_ = std::make_unique<JournalWriter>(
        JournalWriter::create(path, setupDigest, setupInfo));
    return;
  }
  JournalContents contents;
  writer_ = std::make_unique<JournalWriter>(
      JournalWriter::openForAppend(path, setupDigest, &contents));
  hadTruncatedTail_ = contents.truncatedTail;
  for (const JournalRecord& rec : contents.records) {
    if (rec.type != kFaultRecordType) continue;  // unknown types: skip, don't fail
    FaultRecord fault = decodeFaultRecord(rec.payload);
    const auto key = std::make_pair(fault.sweepId, fault.faultIndex);
    loaded_[key] = std::move(fault);  // duplicates: last write wins
  }
}

const FaultRecord* SweepCheckpoint::find(std::uint64_t sweepId,
                                         std::uint32_t faultIndex) const {
  const auto it = loaded_.find(std::make_pair(sweepId, faultIndex));
  return it == loaded_.end() ? nullptr : &it->second;
}

void SweepCheckpoint::record(const FaultRecord& record) {
  writer_->append(kFaultRecordType, encodeFaultRecord(record));
  obs::count(obs::Counter::JournalRecordsWritten);
}

void SweepCheckpoint::appendAux(std::uint16_t type, const std::string& payload) {
  writer_->append(type, payload);
  obs::count(obs::Counter::JournalRecordsWritten);
}

void MemoryRecordSink::record(const FaultRecord& record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  records_[std::make_pair(record.sweepId, record.faultIndex)] = record;
}

const FaultRecord* TeeRecordSink::find(std::uint64_t sweepId, std::uint32_t faultIndex) const {
  const FaultRecord* prior = primary_ ? primary_->find(sweepId, faultIndex) : nullptr;
  // A replayed fault never reaches record(), so copy it into the collector
  // here — the collector ends the sweep with the complete record set either
  // way.
  if (prior && collector_) collector_->record(*prior);
  return prior;
}

void TeeRecordSink::record(const FaultRecord& record) {
  if (primary_) primary_->record(record);
  if (collector_) collector_->record(record);
}

DrReport evaluateWithCheckpoint(const DiagnosisPipeline& pipeline,
                                const std::vector<FaultResponse>& responses,
                                FaultRecordSink* sink, std::uint64_t sweepId,
                                const RunControl& control) {
  if (!sink) return pipeline.evaluate(responses, control);
  return evaluateWithCheckpointRange(pipeline, responses, sink, sweepId, 0, responses.size(),
                                     control);
}

DrReport evaluateWithCheckpointRange(const DiagnosisPipeline& pipeline,
                                     const std::vector<FaultResponse>& responses,
                                     FaultRecordSink* sink, std::uint64_t sweepId,
                                     std::size_t rangeLo, std::size_t rangeHi,
                                     const RunControl& control) {
  // Mirrors DiagnosisPipeline::evaluate — disjoint per-fault slots filled in
  // parallel, then an ordered reduction — with two extra per-fault paths:
  // replay (fault already journaled: re-apply its counter deltas, skip the
  // diagnosis) and record (publish the completed fault before the slot is
  // filled). Both keep slot values and counter totals identical to the
  // uninterrupted run.
  rangeHi = std::min(rangeHi, responses.size());
  rangeLo = std::min(rangeLo, rangeHi);
  const std::size_t count = rangeHi - rangeLo;
  struct Slot {
    std::size_t candidates = 0;
    std::size_t actual = 0;
    bool detected = false;
  };
  std::vector<Slot> slots(count);
  globalPool().parallelFor(count, [&](std::size_t slot) {
    const std::size_t i = rangeLo + slot;
    const FaultResponse& r = responses[i];
    if (!r.detected()) return;
    const std::uint32_t faultIndex = static_cast<std::uint32_t>(i);
    if (const FaultRecord* prior = sink ? sink->find(sweepId, faultIndex) : nullptr) {
      for (const auto& [counter, delta] : prior->counterDeltas) {
        obs::count(static_cast<obs::Counter>(counter), delta);
      }
      obs::count(obs::Counter::JournalRecordsReplayed);
      slots[slot] = Slot{static_cast<std::size_t>(prior->candidateCount),
                         static_cast<std::size_t>(prior->actualCount), true};
      return;
    }
    // Cancellation lands here, never after the diagnosis below starts: each
    // published record is a fault that ran to completion.
    control.throwIfStopped();
    FaultRecord record;
    record.sweepId = sweepId;
    record.faultIndex = faultIndex;
    {
      obs::DeltaCapture capture;
      const FaultDiagnosis d = pipeline.diagnoseDigested(r, &record.verdictDigest);
      record.candidateCount = d.candidateCount;
      record.actualCount = d.actualCount;
      const auto& deltas = capture.deltas();
      for (std::size_t c = 0; c < obs::kNumCounters; ++c) {
        if (deltas[c] != 0) {
          record.counterDeltas.emplace_back(static_cast<std::uint16_t>(c), deltas[c]);
        }
      }
    }
    if (sink) sink->record(record);
    slots[slot] = Slot{static_cast<std::size_t>(record.candidateCount),
                       static_cast<std::size_t>(record.actualCount), true};
  });
  DrAccumulator acc;
  for (const Slot& s : slots) {
    if (s.detected) acc.add(s.candidates, s.actual);
  }
  return DrReport{acc.dr(), acc.faults(), acc.sumCandidates(), acc.sumActual()};
}

}  // namespace scandiag
