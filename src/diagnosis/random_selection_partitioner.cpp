#include "diagnosis/random_selection_partitioner.hpp"

#include <bit>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace scandiag {

RandomSelectionPartitioner::RandomSelectionPartitioner(const RandomSelectionConfig& config,
                                                       std::size_t chainLength,
                                                       std::size_t groupCount)
    : config_(config.lfsr), chainLength_(chainLength), groupCount_(groupCount) {
  SCANDIAG_REQUIRE(chainLength >= 1, "empty scan chain");
  SCANDIAG_REQUIRE(groupCount >= 2 && std::has_single_bit(groupCount),
                   "group count must be a power of two >= 2");
  r_ = static_cast<unsigned>(std::countr_zero(groupCount));
  SCANDIAG_REQUIRE(r_ <= config_.degree, "label width exceeds LFSR degree");
  Lfsr check(config_, config.seed);
  ivr_ = check.state();
}

Partition RandomSelectionPartitioner::next() {
  obs::PhaseScope phase(obs::Phase::PartitionGen);
  obs::count(obs::Counter::PartitionsGenerated);
  Partition p;
  p.groups.assign(groupCount_, BitVector(chainLength_));
  Lfsr lfsr(config_, ivr_);
  for (std::size_t pos = 0; pos < chainLength_; ++pos) {
    p.groups[lfsr.lowBits(r_)].set(pos);
    lfsr.step();
  }
  ivr_ = lfsr.state();  // "IVR is updated with the current value of the LFSR"
  return p;
}

}  // namespace scandiag
