#include "diagnosis/session_engine.hpp"

#include <bit>

#include "bist/primitive_polys.hpp"
#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace scandiag {

SessionEngine::SessionEngine(const ScanTopology& topology, const SessionConfig& config)
    : topology_(&topology), config_(config) {
  SCANDIAG_REQUIRE(config.numPatterns >= 1, "session needs at least one pattern");
}

const MisrLinearModel& SessionEngine::model() const {
  std::call_once(modelOnce_, [this] {
    const unsigned degree =
        config_.mode == SignatureMode::Misr ? config_.misrDegree : config_.pruneDegree;
    const std::uint64_t taps =
        config_.mode == SignatureMode::Misr && config_.misrTapMask
            ? config_.misrTapMask
            : primitiveTapMask(degree);
    const std::size_t totalCycles = config_.numPatterns * topology_->maxChainLength();
    const std::size_t lines =
        config_.compactor ? config_.compactor->outputLines() : topology_->numChains();
    if (config_.compactor) {
      SCANDIAG_REQUIRE(config_.compactor->inputChains() == topology_->numChains(),
                       "compactor width does not match topology");
    }
    model_ = std::make_unique<MisrLinearModel>(degree, taps, static_cast<unsigned>(lines),
                                               totalCycles);
  });
  return *model_;
}

std::uint64_t SessionEngine::cellErrorSignature(std::size_t cell,
                                                const BitVector& errorStream) const {
  const ScanTopology::CellLoc loc = topology_->location(cell);
  const std::size_t chainLen = topology_->maxChainLength();
  const auto cycleOf = [&](std::size_t t) { return t * chainLen + loc.position; };
  if (!config_.compactor) {
    return model().cellSignature(static_cast<unsigned>(loc.chain), errorStream, cycleOf);
  }
  // Through a space compactor the cell's error bit enters every MISR line its
  // chain feeds; by linearity the signatures XOR.
  std::uint64_t sig = 0;
  std::uint64_t column = config_.compactor->columnMask(loc.chain);
  while (column) {
    const unsigned line = static_cast<unsigned>(std::countr_zero(column));
    column &= column - 1;
    sig ^= model().cellSignature(line, errorStream, cycleOf);
  }
  return sig;
}

PartitionVerdictRow SessionEngine::computeRow(const Partition& partition,
                                              const BitVector& failingPositions,
                                              const std::vector<std::size_t>& cellPos,
                                              const std::vector<std::uint64_t>& cellSig,
                                              bool needSignatures,
                                              const std::vector<std::size_t>* groupTable) const {
  SCANDIAG_REQUIRE(partition.length() == topology_->maxChainLength(),
                   "partition length does not match topology");
  const std::size_t b = partition.groupCount();
  PartitionVerdictRow row;
  row.failing = BitVector(b);
  std::vector<std::uint64_t> sig(b, 0);
  if (needSignatures) {
    // Prepared callers pass the table computed once per schedule; the
    // fallback rebuilds it (an O(chainLength) pass) for this call only.
    const std::vector<std::size_t> rebuilt =
        groupTable == nullptr ? partition.groupTable() : std::vector<std::size_t>{};
    const std::vector<std::size_t>& table = groupTable ? *groupTable : rebuilt;
    for (std::size_t i = 0; i < cellPos.size(); ++i) sig[table[cellPos[i]]] ^= cellSig[i];
  }
  for (std::size_t g = 0; g < b; ++g) {
    const bool exactFail = partition.groups[g].intersects(failingPositions);
    const bool verdict = config_.mode == SignatureMode::Exact ? exactFail : (sig[g] != 0);
    if (verdict) row.failing.set(g);
  }
  if (needSignatures) row.errorSig = std::move(sig);
  return row;
}

void SessionEngine::prepareCells(const FaultResponse& response, bool needSignatures,
                                 BitVector& failingPositions, std::vector<std::size_t>& cellPos,
                                 std::vector<std::uint64_t>& cellSig) const {
  // Positions holding at least one failing cell (drives exact verdicts).
  failingPositions = topology_->collapseCells(response.failingCells);
  // Per failing cell: chain position and (optionally) error signature.
  const std::size_t numFailing = response.failingCellOrdinals.size();
  cellPos.assign(numFailing, 0);
  cellSig.assign(numFailing, 0);
  std::uint64_t hashedWords = 0;
  for (std::size_t i = 0; i < numFailing; ++i) {
    const std::size_t cell = response.failingCellOrdinals[i];
    cellPos[i] = topology_->location(cell).position;
    if (needSignatures) {
      cellSig[i] = cellErrorSignature(cell, response.errorStreams[i]);
      hashedWords += response.errorStreams[i].wordCount();
    }
  }
  if (hashedWords > 0) obs::count(obs::Counter::SignatureWordsHashed, hashedWords);
}

GroupVerdicts SessionEngine::runImpl(const std::vector<Partition>& partitions,
                                     const PreparedPartitionSet* prepared,
                                     const FaultResponse& response) const {
  // Counters only — no PhaseScope: this is the per-fault hot path of the
  // batch DR drivers, and two steady_clock reads per call cost several
  // percent of a whole diagnosis. Phase timing for session work happens at
  // the single-fault API (DiagnosisPipeline::diagnose) and in runPartition
  // (the per-partition retry path), where a call does enough work to
  // amortize the clock reads.
  const bool needSignatures =
      config_.mode == SignatureMode::Misr || config_.computeSignatures;

  BitVector failingPositions;
  std::vector<std::size_t> cellPos;
  std::vector<std::uint64_t> cellSig;
  prepareCells(response, needSignatures, failingPositions, cellPos, cellSig);

  GroupVerdicts verdicts;
  verdicts.failing.reserve(partitions.size());
  if (needSignatures) {
    verdicts.hasSignatures = true;
    verdicts.signatureDegree =
        config_.mode == SignatureMode::Misr ? config_.misrDegree : config_.pruneDegree;
    verdicts.errorSig.reserve(partitions.size());
  }

  std::uint64_t sessions = 0;
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    const Partition& partition = partitions[p];
    sessions += partition.groupCount();
    PartitionVerdictRow row = computeRow(partition, failingPositions, cellPos, cellSig,
                                         needSignatures,
                                         prepared ? &prepared->groupTable(p) : nullptr);
    verdicts.failing.push_back(std::move(row.failing));
    if (needSignatures) verdicts.errorSig.push_back(std::move(row.errorSig));
  }
  obs::count(obs::Counter::PartitionsEvaluated, partitions.size());
  obs::count(obs::Counter::SessionsRun, sessions);
  return verdicts;
}

GroupVerdicts SessionEngine::run(const PreparedPartitionSet& prepared,
                                 const FaultResponse& response) const {
  return runImpl(prepared.partitions(), &prepared, response);
}

GroupVerdicts SessionEngine::run(const std::vector<Partition>& partitions,
                                 const FaultResponse& response) const {
  return runImpl(partitions, nullptr, response);
}

PartitionVerdictRow SessionEngine::runPartitionImpl(
    const Partition& partition, const std::vector<std::size_t>* groupTable,
    const FaultResponse& response) const {
  obs::PhaseScope phase(obs::Phase::SignatureCompare);
  obs::count(obs::Counter::PartitionsEvaluated);
  obs::count(obs::Counter::SessionsRun, partition.groupCount());
  const bool needSignatures =
      config_.mode == SignatureMode::Misr || config_.computeSignatures;
  BitVector failingPositions;
  std::vector<std::size_t> cellPos;
  std::vector<std::uint64_t> cellSig;
  prepareCells(response, needSignatures, failingPositions, cellPos, cellSig);
  return computeRow(partition, failingPositions, cellPos, cellSig, needSignatures, groupTable);
}

PartitionVerdictRow SessionEngine::runPartition(const Partition& partition,
                                                const FaultResponse& response) const {
  return runPartitionImpl(partition, nullptr, response);
}

PartitionVerdictRow SessionEngine::runPartition(const PreparedPartitionSet& prepared,
                                                std::size_t index,
                                                const FaultResponse& response) const {
  return runPartitionImpl(prepared.partition(index), &prepared.groupTable(index), response);
}

}  // namespace scandiag
