#include "diagnosis/session_engine.hpp"

#include <algorithm>
#include <bit>

#include "bist/primitive_polys.hpp"
#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace scandiag {
namespace {

/// Cap on the per-cell contribution table (numCells × numPatterns u64
/// entries, 32 MiB at the cap). Topologies past it — none of the bundled
/// benchmarks come close — fall back to the per-bit model path inside the
/// batched scorer, which computes the same signatures without the table.
constexpr std::size_t kMaxContributionEntries = std::size_t{1} << 22;

}  // namespace

SessionEngine::SessionEngine(const ScanTopology& topology, const SessionConfig& config)
    : topology_(&topology), config_(config) {
  SCANDIAG_REQUIRE(config.numPatterns >= 1, "session needs at least one pattern");
}

const MisrLinearModel& SessionEngine::model() const {
  std::call_once(modelOnce_, [this] {
    const unsigned degree =
        config_.mode == SignatureMode::Misr ? config_.misrDegree : config_.pruneDegree;
    const std::uint64_t taps =
        config_.mode == SignatureMode::Misr && config_.misrTapMask
            ? config_.misrTapMask
            : primitiveTapMask(degree);
    const std::size_t totalCycles = config_.numPatterns * topology_->maxChainLength();
    const std::size_t lines =
        config_.compactor ? config_.compactor->outputLines() : topology_->numChains();
    if (config_.compactor) {
      SCANDIAG_REQUIRE(config_.compactor->inputChains() == topology_->numChains(),
                       "compactor width does not match topology");
    }
    model_ = std::make_unique<MisrLinearModel>(degree, taps, static_cast<unsigned>(lines),
                                               totalCycles);
  });
  return *model_;
}

const std::uint64_t* SessionEngine::contributions() const {
  std::call_once(contribOnce_, [this] {
    const std::size_t numCells = topology_->numCells();
    const std::size_t patterns = config_.numPatterns;
    if (numCells == 0 || numCells > kMaxContributionEntries / patterns) return;
    const MisrLinearModel& misr = model();
    const std::size_t chainLen = topology_->maxChainLength();
    contrib_.assign(numCells * patterns, 0);
    for (std::size_t cell = 0; cell < numCells; ++cell) {
      const ScanTopology::CellLoc loc = topology_->location(cell);
      std::uint64_t* out = contrib_.data() + cell * patterns;
      const auto fold = [&](unsigned line) {
        const std::uint64_t* w = misr.lineWeights(line);
        for (std::size_t t = 0; t < patterns; ++t) out[t] ^= w[t * chainLen + loc.position];
      };
      if (!config_.compactor) {
        fold(static_cast<unsigned>(loc.chain));
      } else {
        std::uint64_t column = config_.compactor->columnMask(loc.chain);
        while (column) {
          fold(static_cast<unsigned>(std::countr_zero(column)));
          column &= column - 1;
        }
      }
    }
    contribReady_ = true;
  });
  return contribReady_ ? contrib_.data() : nullptr;
}

std::uint64_t SessionEngine::cellErrorSignature(std::size_t cell,
                                                const BitVector& errorStream) const {
  const ScanTopology::CellLoc loc = topology_->location(cell);
  const std::size_t chainLen = topology_->maxChainLength();
  const auto cycleOf = [&](std::size_t t) { return t * chainLen + loc.position; };
  if (!config_.compactor) {
    return model().cellSignature(static_cast<unsigned>(loc.chain), errorStream, cycleOf);
  }
  // Through a space compactor the cell's error bit enters every MISR line its
  // chain feeds; by linearity the signatures XOR.
  std::uint64_t sig = 0;
  std::uint64_t column = config_.compactor->columnMask(loc.chain);
  while (column) {
    const unsigned line = static_cast<unsigned>(std::countr_zero(column));
    column &= column - 1;
    sig ^= model().cellSignature(line, errorStream, cycleOf);
  }
  return sig;
}

PartitionVerdictRow SessionEngine::computeRow(const Partition& partition,
                                              const BitVector& failingPositions,
                                              const std::vector<std::size_t>& cellPos,
                                              const std::vector<std::uint64_t>& cellSig,
                                              bool needSignatures,
                                              const std::vector<std::size_t>* groupTable) const {
  SCANDIAG_REQUIRE(partition.length() == topology_->maxChainLength(),
                   "partition length does not match topology");
  const std::size_t b = partition.groupCount();
  PartitionVerdictRow row;
  row.failing = BitVector(b);
  std::vector<std::uint64_t> sig(b, 0);
  if (needSignatures) {
    // Prepared callers pass the table computed once per schedule; the
    // fallback rebuilds it (an O(chainLength) pass) for this call only.
    const std::vector<std::size_t> rebuilt =
        groupTable == nullptr ? partition.groupTable() : std::vector<std::size_t>{};
    const std::vector<std::size_t>& table = groupTable ? *groupTable : rebuilt;
    for (std::size_t i = 0; i < cellPos.size(); ++i) sig[table[cellPos[i]]] ^= cellSig[i];
  }
  for (std::size_t g = 0; g < b; ++g) {
    const bool exactFail = partition.groups[g].intersects(failingPositions);
    const bool verdict = config_.mode == SignatureMode::Exact ? exactFail : (sig[g] != 0);
    if (verdict) row.failing.set(g);
  }
  if (needSignatures) row.errorSig = std::move(sig);
  return row;
}

void SessionEngine::prepareCells(const FaultResponse& response, bool needSignatures,
                                 BitVector& failingPositions, std::vector<std::size_t>& cellPos,
                                 std::vector<std::uint64_t>& cellSig,
                                 const std::uint64_t* contribTable) const {
  // Positions holding at least one failing cell (drives exact verdicts).
  failingPositions = topology_->collapseCells(response.failingCells);
  // Per failing cell: chain position and (optionally) error signature.
  const std::size_t numFailing = response.failingCellOrdinals.size();
  cellPos.assign(numFailing, 0);
  cellSig.assign(numFailing, 0);
  const std::size_t patterns = config_.numPatterns;
  std::uint64_t hashedWords = 0;
  for (std::size_t i = 0; i < numFailing; ++i) {
    const std::size_t cell = response.failingCellOrdinals[i];
    cellPos[i] = topology_->location(cell).position;
    if (needSignatures) {
      if (contribTable) {
        // Precomputed gather: one XOR per error bit, weights already folded
        // through the compactor. Bit-identical to cellErrorSignature (same
        // XOR sum, associativity aside).
        const std::uint64_t* w = contribTable + cell * patterns;
        const BitVector& stream = response.errorStreams[i];
        std::uint64_t sig = 0;
        for (std::size_t t = stream.findFirst(); t != BitVector::npos;
             t = stream.findNext(t)) {
          sig ^= w[t];
        }
        cellSig[i] = sig;
      } else {
        cellSig[i] = cellErrorSignature(cell, response.errorStreams[i]);
      }
      hashedWords += response.errorStreams[i].wordCount();
    }
  }
  if (hashedWords > 0) obs::count(obs::Counter::SignatureWordsHashed, hashedWords);
}

GroupVerdicts SessionEngine::runImpl(const std::vector<Partition>& partitions,
                                     const PreparedPartitionSet* prepared,
                                     const FaultResponse& response) const {
  // Counters only — no PhaseScope: this is the per-fault hot path of the
  // batch DR drivers, and two steady_clock reads per call cost several
  // percent of a whole diagnosis. Phase timing for session work happens at
  // the single-fault API (DiagnosisPipeline::diagnose) and in runPartition
  // (the per-partition retry path), where a call does enough work to
  // amortize the clock reads.
  const bool needSignatures =
      config_.mode == SignatureMode::Misr || config_.computeSignatures;

  BitVector failingPositions;
  std::vector<std::size_t> cellPos;
  std::vector<std::uint64_t> cellSig;
  prepareCells(response, needSignatures, failingPositions, cellPos, cellSig, nullptr);

  GroupVerdicts verdicts;
  verdicts.failing.reserve(partitions.size());
  if (needSignatures) {
    verdicts.hasSignatures = true;
    verdicts.signatureDegree =
        config_.mode == SignatureMode::Misr ? config_.misrDegree : config_.pruneDegree;
    verdicts.errorSig.reserve(partitions.size());
  }

  std::uint64_t sessions = 0;
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    const Partition& partition = partitions[p];
    sessions += partition.groupCount();
    PartitionVerdictRow row = computeRow(partition, failingPositions, cellPos, cellSig,
                                         needSignatures,
                                         prepared ? &prepared->groupTable(p) : nullptr);
    verdicts.failing.push_back(std::move(row.failing));
    if (needSignatures) verdicts.errorSig.push_back(std::move(row.errorSig));
  }
  obs::count(obs::Counter::PartitionsEvaluated, partitions.size());
  obs::count(obs::Counter::SessionsRun, sessions);
  return verdicts;
}

GroupVerdicts SessionEngine::runBatched(const PreparedPartitionSet& prepared,
                                        const FaultResponse& response,
                                        SessionBatchScratch* scratch) const {
  SCANDIAG_REQUIRE(prepared.batchReady(), "batched scorer needs the batch layout");
  SCANDIAG_REQUIRE(prepared.partition(0).length() == topology_->maxChainLength(),
                   "partition length does not match topology");
  // Same no-PhaseScope rule as runImpl: per-fault hot path.
  const bool needSignatures =
      config_.mode == SignatureMode::Misr || config_.computeSignatures;
  const std::size_t numPartitions = prepared.size();
  const std::size_t total = prepared.totalGroups();

  SessionBatchScratch local;
  SessionBatchScratch& s = scratch ? *scratch : local;
  if (needSignatures) {
    prepareCells(response, true, s.failingPositions, s.cellPos, s.cellSig, contributions());
  } else {
    // Exact verdicts need only the collapsed failing positions; skip the
    // per-cell position/signature pass entirely (the reference path keeps it
    // because computeRow's interface is shared with the signature modes).
    // Filling the scratch vector from the dense ordinal list — rather than
    // ScanTopology::collapseCells — means a reused scratch allocates nothing
    // and nothing scans the full per-cell bit vector. The bit vector dedupes
    // positions shared by cells on different chains.
    s.failingPositions.resize(topology_->maxChainLength());
    s.failingPositions.resetAll();
    BitVector::Word* seen = s.failingPositions.data();
    for (const std::size_t cell : response.failingCellOrdinals) {
      const std::size_t pos = topology_->location(cell).position;
      seen[pos / BitVector::kWordBits] |= BitVector::Word{1}
                                          << (pos % BitVector::kWordBits);
    }
    s.cellPos.clear();
    s.cellSig.clear();
  }

  // Flat scoreboards over the schedule's global group ids; reset in place so
  // a reused scratch allocates nothing in steady state.
  std::uint64_t contribCells = 0;
  if (needSignatures) {
    s.flatSig.assign(total, 0);
    for (std::size_t i = 0; i < s.cellPos.size(); ++i) {
      const std::uint32_t* row = prepared.groupsAtPosition(s.cellPos[i]);
      const std::uint64_t sig = s.cellSig[i];
      for (std::size_t p = 0; p < numPartitions; ++p) s.flatSig[row[p]] ^= sig;
    }
    contribCells += s.cellPos.size() * numPartitions;
  }
  if (config_.mode == SignatureMode::Exact) {
    s.groupFail.resize(total);
    s.groupFail.resetAll();
    BitVector::Word* words = s.groupFail.data();
    // Word-wise iteration over failing positions: findNext() is an
    // out-of-line call per set bit, which dominates the whole scorer once
    // everything else is a fused pass.
    const BitVector::Word* fw = s.failingPositions.data();
    const std::size_t nw = s.failingPositions.wordCount();
    for (std::size_t wi = 0; wi < nw; ++wi) {
      BitVector::Word bits = fw[wi];
      while (bits) {
        const std::size_t pos =
            wi * BitVector::kWordBits + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::uint32_t* row = prepared.groupsAtPosition(pos);
        for (std::size_t p = 0; p < numPartitions; ++p) {
          const std::uint32_t id = row[p];
          words[id / BitVector::kWordBits] |= BitVector::Word{1}
                                              << (id % BitVector::kWordBits);
        }
        contribCells += numPartitions;
      }
    }
  }

  GroupVerdicts verdicts;
  verdicts.failing.reserve(numPartitions);
  if (needSignatures) {
    verdicts.hasSignatures = true;
    verdicts.signatureDegree =
        config_.mode == SignatureMode::Misr ? config_.misrDegree : config_.pruneDegree;
    verdicts.errorSig.reserve(numPartitions);
  }
  for (std::size_t p = 0; p < numPartitions; ++p) {
    verdicts.failing.emplace_back(prepared.partition(p).groupCount());
  }
  if (config_.mode == SignatureMode::Exact) {
    // Sparse compose: one word-wise sweep over the set bits of the flat
    // scoreboard. Global group ids ascend with the partition index, so the
    // partition cursor only ever moves forward.
    std::size_t p = 0;
    const BitVector::Word* gw = s.groupFail.data();
    const std::size_t nw = s.groupFail.wordCount();
    for (std::size_t wi = 0; wi < nw; ++wi) {
      BitVector::Word bits = gw[wi];
      while (bits) {
        const std::size_t id =
            wi * BitVector::kWordBits + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        while (id >= prepared.groupOffset(p + 1)) ++p;
        verdicts.failing[p].set(id - prepared.groupOffset(p));
      }
    }
  }
  if (needSignatures) {
    for (std::size_t p = 0; p < numPartitions; ++p) {
      const std::size_t b = prepared.partition(p).groupCount();
      const std::size_t off = prepared.groupOffset(p);
      if (config_.mode != SignatureMode::Exact) {
        BitVector& failing = verdicts.failing[p];
        for (std::size_t g = 0; g < b; ++g) {
          if (s.flatSig[off + g] != 0) failing.set(g);
        }
      }
      verdicts.errorSig.emplace_back(s.flatSig.begin() + static_cast<std::ptrdiff_t>(off),
                                     s.flatSig.begin() + static_cast<std::ptrdiff_t>(off + b));
    }
  }

  // PartitionsEvaluated / SessionsRun deltas match runImpl exactly (the
  // counter-parity contract); the two batch counters tally batched-only work.
  obs::count(obs::Counter::PartitionsEvaluated, numPartitions);
  obs::count(obs::Counter::SessionsRun, total);
  obs::count(obs::Counter::BatchedGroupScores, total);
  if (contribCells > 0) obs::count(obs::Counter::BatchContribCells, contribCells);
  return verdicts;
}

GroupVerdicts SessionEngine::run(const PreparedPartitionSet& prepared,
                                 const FaultResponse& response,
                                 SessionBatchScratch* scratch) const {
  if (config_.scorer == SessionScorer::Batched && prepared.batchReady()) {
    return runBatched(prepared, response, scratch);
  }
  return runImpl(prepared.partitions(), &prepared, response);
}

GroupVerdicts SessionEngine::runReference(const PreparedPartitionSet& prepared,
                                          const FaultResponse& response) const {
  return runImpl(prepared.partitions(), &prepared, response);
}

GroupVerdicts SessionEngine::run(const std::vector<Partition>& partitions,
                                 const FaultResponse& response) const {
  return runImpl(partitions, nullptr, response);
}

PartitionVerdictRow SessionEngine::runPartitionImpl(
    const Partition& partition, const std::vector<std::size_t>* groupTable,
    const FaultResponse& response) const {
  obs::PhaseScope phase(obs::Phase::SignatureCompare);
  obs::count(obs::Counter::PartitionsEvaluated);
  obs::count(obs::Counter::SessionsRun, partition.groupCount());
  const bool needSignatures =
      config_.mode == SignatureMode::Misr || config_.computeSignatures;
  BitVector failingPositions;
  std::vector<std::size_t> cellPos;
  std::vector<std::uint64_t> cellSig;
  prepareCells(response, needSignatures, failingPositions, cellPos, cellSig, nullptr);
  return computeRow(partition, failingPositions, cellPos, cellSig, needSignatures, groupTable);
}

PartitionVerdictRow SessionEngine::runPartition(const Partition& partition,
                                                const FaultResponse& response) const {
  return runPartitionImpl(partition, nullptr, response);
}

PartitionVerdictRow SessionEngine::runPartition(const PreparedPartitionSet& prepared,
                                                std::size_t index,
                                                const FaultResponse& response) const {
  return runPartitionImpl(prepared.partition(index), &prepared.groupTable(index), response);
}

}  // namespace scandiag
