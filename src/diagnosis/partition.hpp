// Scan chain partition: a disjoint, covering family of groups over the
// selection axis (shift positions 0..L-1, see ScanTopology).
//
// Each group corresponds to one BIST session: during that session only the
// cells at the group's positions reach the compactor. Diagnosis quality comes
// entirely from how the groups of successive partitions overlap.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/bitvector.hpp"

namespace scandiag {

struct Partition {
  std::vector<BitVector> groups;  // each sized length(); disjoint; union covers

  std::size_t groupCount() const { return groups.size(); }
  std::size_t length() const { return groups.empty() ? 0 : groups[0].size(); }

  /// Group index containing `pos`.
  std::size_t groupOf(std::size_t pos) const;

  /// Per-position group index table (one pass; use for bulk lookups).
  std::vector<std::size_t> groupTable() const;

  /// Checks disjointness and coverage; throws std::logic_error on violation.
  void validate() const;
};

/// Abstract partition generator. next() yields partition 0, 1, 2, ... of a
/// scheme; generators are stateful because the hardware chains IVR seeds.
class PartitionScheme {
 public:
  virtual ~PartitionScheme() = default;
  virtual Partition next() = 0;
  virtual std::string name() const = 0;
};

/// First `count` partitions of a scheme.
std::vector<Partition> takePartitions(PartitionScheme& scheme, std::size_t count);

}  // namespace scandiag
