#include "diagnosis/vector_identification.hpp"

#include "common/assert.hpp"

namespace scandiag {

VectorDiagnoser::VectorDiagnoser(const DiagnosisConfig& config)
    : config_(config), partitions_(buildPartitions(config, config.numPatterns)) {
  SCANDIAG_REQUIRE(config.mode == SignatureMode::Exact,
                   "vector identification implements exact verdicts only");
}

BitVector VectorDiagnoser::failingVectors(const FaultResponse& response,
                                          std::size_t numPatterns) {
  BitVector failing(numPatterns);
  for (const BitVector& stream : response.errorStreams) {
    SCANDIAG_REQUIRE(stream.size() == numPatterns, "error stream length mismatch");
    failing |= stream;
  }
  return failing;
}

BitVector VectorDiagnoser::diagnose(const FaultResponse& response) const {
  const std::size_t numPatterns = config_.numPatterns;
  const BitVector failing = failingVectors(response, numPatterns);
  BitVector candidates(numPatterns, true);
  for (const Partition& partition : partitions_) {
    BitVector failingUnion(numPatterns);
    for (const BitVector& group : partition.groups) {
      if (group.intersects(failing)) failingUnion |= group;
    }
    candidates &= failingUnion;
  }
  return candidates;
}

DrReport VectorDiagnoser::evaluate(const std::vector<FaultResponse>& responses) const {
  DrAccumulator acc;
  for (const FaultResponse& r : responses) {
    if (!r.detected()) continue;
    const BitVector truth = failingVectors(r, config_.numPatterns);
    acc.add(diagnose(r).count(), truth.count());
  }
  return DrReport{acc.dr(), acc.faults(), acc.sumCandidates(), acc.sumActual()};
}

}  // namespace scandiag
