// Interval-based partitioning (paper §2.2) — step 1 of the contribution.
//
// Each group of a partition is an *interval* of consecutive shift positions;
// interval lengths are read from rlen LFSR stages (one LFSR step per interval
// boundary), and the IVR seed is pre-computed so the configured number of
// intervals covers the chain with no empty group (see interval_seed_search).
// Clustered failing cells — one fault cone mapping to a short run of the
// chain — land in one or two intervals, so a single partition already
// exonerates most of the chain.
#pragma once

#include <cstdint>

#include "bist/interval_seed_search.hpp"
#include "diagnosis/partition.hpp"

namespace scandiag {

struct IntervalPartitionerConfig {
  LfsrConfig lfsr{/*degree=*/16, /*tapMask=*/0};
  /// Interval-length field width; 0 = defaultIntervalBits(chain, groups).
  unsigned rlen = 0;
  /// Seed-search starting point; successive partitions take successive
  /// covering seeds.
  std::uint64_t startSeed = 0xBEEF;
};

class IntervalPartitioner final : public PartitionScheme {
 public:
  IntervalPartitioner(const IntervalPartitionerConfig& config, std::size_t chainLength,
                      std::size_t groupCount);

  Partition next() override;
  std::string name() const override { return "interval-based"; }

  unsigned intervalBits() const { return rlen_; }
  /// Seeds consumed so far, in partition order.
  const std::vector<IntervalSeedResult>& usedSeeds() const { return used_; }

  /// Builds the partition induced by explicit interval lengths (sum == chain
  /// length). Exposed for tests and for the hardware-equivalence check.
  static Partition fromLengths(const std::vector<std::size_t>& lengths,
                               std::size_t chainLength);

 private:
  LfsrConfig config_;
  std::size_t chainLength_;
  std::size_t groupCount_;
  unsigned rlen_;
  std::uint64_t nextSeed_;
  std::vector<IntervalSeedResult> used_;
};

}  // namespace scandiag
