// Active refinement of multi-fault union candidates: a set-cover /
// binary-search hybrid on top of the binary-search baseline's interval
// sessions.
//
// The passive stage (intersection / checked union analysis) leaves a
// candidate position set that is a sound superset of a permanent k-fault
// union but may carry accidental survivors — positions every failing union
// happened to cover. Refinement spends extra tester sessions to shrink it:
//
//  * The candidate positions decompose into maximal contiguous segments.
//    Each segment is queried whole first (set-cover step: one session can
//    exonerate a whole accidental segment); a failing segment is split
//    binary-search style, exactly the oracle protocol of
//    binary_search_diagnoser. When a parent fails and its left half passes
//    the right half is inferred failing without a session; when the left
//    half fails the right half must still be queried — with k faults both
//    halves can fail, which is precisely where this departs from the
//    single-fault search.
//  * Segments are ordered by a descending accidental-detection-index (ADI)
//    prior (Pomeranz/Reddy): positions whose cells toggle often in the
//    fault-free capture stream are the likeliest accidental survivors, so
//    querying them first buys the largest expected candidate reduction per
//    session when the budget is tight.
//  * The session budget bounds everything. Intervals still unqueried when it
//    runs out stay candidates — refinement only ever exonerates on the
//    strength of a passing session, so the result remains a sound superset
//    (degrade-never-lie), just less sharp.
//
// The oracle abstracts the tester: oracle(lo, hi, attempt) is the verdict of
// one session observing selection positions [lo, hi). Sessions are charged
// at the standard CostModel rate.
#pragma once

#include <vector>

#include "bist/scan_topology.hpp"
#include "diagnosis/binary_search_diagnoser.hpp"
#include "diagnosis/candidate_analyzer.hpp"
#include "diagnosis/cost_model.hpp"

namespace scandiag {

struct UnionRefineConfig {
  /// Interval sessions the refinement may spend (0 = passive result only).
  std::size_t sessionBudget = 96;
  /// Simultaneous-fault budget: more isolated failing clusters than this
  /// marks the result degraded (k exceeded the resolvable budget).
  std::size_t maxFaults = 4;
};

struct UnionRefinement {
  /// Positions confirmed failing by a width-1 failing session (or inference).
  BitVector confirmed;
  /// Positions exonerated by a passing session.
  BitVector exonerated;
  /// Positions still untested when the budget ran out.
  BitVector unresolved;
  /// confirmed | unresolved, expanded to cells — always a subset of the
  /// input candidates and, for permanent faults with an exact oracle, always
  /// a superset of the true failing positions.
  CandidateSet candidates;
  std::size_t sessions = 0;
  /// Interval splits performed (obs::Counter::UnionSplits).
  std::size_t splits = 0;
  /// Maximal runs of confirmed positions — the isolated per-fault clusters.
  std::size_t failingClusters = 0;
  /// Budget sufficed: every candidate position was confirmed or exonerated.
  bool complete = false;
  /// failingClusters <= maxFaults.
  bool withinFaultBudget = true;
  DiagnosisCost cost;

  bool degraded() const { return !complete || !withinFaultBudget; }
};

class UnionDiagnoser {
 public:
  UnionDiagnoser(const ScanTopology& topology, const UnionRefineConfig& config,
                 std::size_t numPatterns)
      : topology_(&topology), config_(config), numPatterns_(numPatterns) {}

  const UnionRefineConfig& config() const { return config_; }

  /// Refines `candidatePositions` (selection axis) against the oracle.
  /// `adiPrior` (size maxChainLength, or empty for uniform) orders segments;
  /// higher weight = queried earlier.
  UnionRefinement refine(const BitVector& candidatePositions,
                         const std::vector<double>& adiPrior,
                         const IntervalOracle& oracle) const;

 private:
  const ScanTopology* topology_;
  UnionRefineConfig config_;
  std::size_t numPatterns_;
};

/// ADI prior from fault-free capture streams: weight of a selection position
/// is the summed transition density of the good capture streams of the cells
/// at that position. Cells whose captures toggle under many patterns are
/// detected (and accidentally implicated) by many patterns — the
/// Pomeranz/Reddy accidental-detection intuition, computed from data the
/// tester already has (the good machine).
std::vector<double> adiPriorFromGoodCaptures(const ScanTopology& topology,
                                             const std::vector<BitVector>& goodCaptures);

}  // namespace scandiag
