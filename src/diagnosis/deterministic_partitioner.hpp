// Deterministic fixed-length interval partitioning — the baseline of
// Bayraktaroglu & Orailoglu [8], discussed in paper §2.1.
//
// Every group is an equal-length interval of ceil(L / b) positions; partition
// p rotates the interval boundaries by p * stride positions so successive
// partitions cut the chain at different places. The paper dismisses this
// scheme for hardware cost ("deterministic partitioning with fixed interval
// length requires expensive control logic") rather than resolution; having it
// as a software baseline lets bench_baselines quantify what the LFSR-random
// interval lengths of §2.2 give up, if anything.
#pragma once

#include "diagnosis/partition.hpp"

namespace scandiag {

struct DeterministicIntervalConfig {
  /// Boundary rotation between successive partitions, as a fraction of the
  /// interval length. A rational fraction like 1/2 revisits the same boundary
  /// phases after a couple of partitions (gcd(step, length) phases exist);
  /// the golden-ratio fraction makes the phase sequence near-equidistributed,
  /// which is the strongest form of this baseline.
  double rotationFraction = 0.381966;
};

class DeterministicIntervalPartitioner final : public PartitionScheme {
 public:
  DeterministicIntervalPartitioner(const DeterministicIntervalConfig& config,
                                   std::size_t chainLength, std::size_t groupCount);

  Partition next() override;
  std::string name() const override { return "deterministic-interval"; }

  std::size_t intervalLength() const { return intervalLength_; }

 private:
  std::size_t chainLength_;
  std::size_t groupCount_;
  std::size_t intervalLength_;
  std::size_t rotationStep_;
  std::size_t partitionIndex_ = 0;
};

}  // namespace scandiag
