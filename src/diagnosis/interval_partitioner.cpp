#include "diagnosis/interval_partitioner.hpp"

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace scandiag {

IntervalPartitioner::IntervalPartitioner(const IntervalPartitionerConfig& config,
                                         std::size_t chainLength, std::size_t groupCount)
    : config_(config.lfsr),
      chainLength_(chainLength),
      groupCount_(groupCount),
      nextSeed_(config.startSeed) {
  SCANDIAG_REQUIRE(chainLength >= 1, "empty scan chain");
  SCANDIAG_REQUIRE(groupCount >= 1 && groupCount <= chainLength,
                   "group count must be in [1, chain length]");
  rlen_ = config.rlen ? config.rlen
                      : defaultIntervalBits(chainLength, groupCount, config_.degree);
  SCANDIAG_REQUIRE(rlen_ <= config_.degree, "interval field exceeds LFSR degree");
}

Partition IntervalPartitioner::fromLengths(const std::vector<std::size_t>& lengths,
                                           std::size_t chainLength) {
  Partition p;
  p.groups.assign(lengths.size(), BitVector(chainLength));
  std::size_t pos = 0;
  for (std::size_t g = 0; g < lengths.size(); ++g) {
    for (std::size_t i = 0; i < lengths[g]; ++i) {
      SCANDIAG_REQUIRE(pos < chainLength, "interval lengths exceed chain");
      p.groups[g].set(pos++);
    }
  }
  SCANDIAG_REQUIRE(pos == chainLength, "interval lengths do not cover chain");
  return p;
}

Partition IntervalPartitioner::next() {
  obs::PhaseScope phase(obs::Phase::PartitionGen);
  obs::count(obs::Counter::PartitionsGenerated);
  auto seed = findIntervalSeed(config_, rlen_, groupCount_, chainLength_, nextSeed_);
  SCANDIAG_REQUIRE(seed.has_value(),
                   "no covering interval seed for this chain/group configuration");
  nextSeed_ = seed->seed + 1;
  used_.push_back(*seed);
  return fromLengths(used_.back().lengths, chainLength_);
}

}  // namespace scandiag
