#include "diagnosis/planner.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/assert.hpp"

namespace scandiag {

std::size_t recommendGroupCount(std::size_t chainLength) {
  SCANDIAG_REQUIRE(chainLength >= 1, "empty chain");
  const double ideal = std::sqrt(static_cast<double>(chainLength));
  const double exponent = std::round(std::log2(std::max(ideal, 2.0)));
  const std::size_t pow2 = std::size_t{1} << static_cast<unsigned>(exponent);
  // min(max(pow2, 2), min(64, chainLength)), written without std::clamp: for
  // chainLength 1 the upper bound (1) is below the lower bound (2), which is
  // undefined behavior for clamp — the chain-length cap must win, yielding
  // the single degenerate group a one-cell chain admits.
  const std::size_t cap = std::min<std::size_t>(64, chainLength);
  return std::min(std::max<std::size_t>(pow2, 2), cap);
}

PlanResult planDiagnosis(const ScanTopology& topology,
                         const std::vector<FaultResponse>& sample,
                         const PlanRequest& request) {
  SCANDIAG_REQUIRE(!sample.empty(), "planner needs a calibration sample");
  SCANDIAG_REQUIRE(request.maxPartitions >= 1, "need at least one partition");

  // Candidates are clamped to the chain: a partition cannot have more groups
  // than selection-axis positions (recommendGroupCount applies the same cap —
  // a 1-cell chain admits exactly one degenerate group, not the 2-group
  // fallback this code used to propose). The clamp also normalizes to a power
  // of two, because random-selection labels are bit fields: an explicit
  // candidate of 8 on a 3-cell chain must become 2, not the 3 that the
  // random-selection partitioner rejects. Clamping can collide explicit
  // candidates, so duplicates are dropped to avoid re-evaluating a config.
  const std::size_t maxGroups = topology.maxChainLength();
  std::vector<std::size_t> groups;
  for (std::size_t g : request.groupCandidates) {
    const std::size_t clamped =
        std::max<std::size_t>(std::bit_floor(std::min(g, maxGroups)), 1);
    if (std::find(groups.begin(), groups.end(), clamped) == groups.end()) {
      groups.push_back(clamped);
    }
  }
  if (groups.empty()) {
    for (std::size_t g : {4u, 8u, 16u, 32u, 64u}) {
      if (g <= maxGroups) groups.push_back(g);
    }
    if (groups.empty()) groups.push_back(std::min<std::size_t>(2, maxGroups));
  }

  PlanResult best;
  for (std::size_t g : groups) {
    DiagnosisConfig config;
    config.scheme = request.scheme;
    config.numPartitions = request.maxPartitions;
    config.groupsPerPartition = g;
    config.numPatterns = request.numPatterns;
    const DiagnosisPipeline pipeline(topology, config);
    const std::vector<double> sweep = pipeline.evaluateSweep(sample);
    for (std::size_t p = 0; p < sweep.size(); ++p) {
      if (sweep[p] > request.targetDr) continue;
      // Cost of the *chosen* plan: p + 1 partitions, not the maxPartitions
      // budget the sweep pipeline was built with. config.numPartitions is set
      // before the copy so the reported cost and config can never diverge.
      const DiagnosisCost cost = partitionRunCost(p + 1, g, request.numPatterns,
                                                  topology.maxChainLength());
      const bool better =
          !best.feasible || cost.sessions < best.cost.sessions ||
          (cost.sessions == best.cost.sessions && cost.clockCycles < best.cost.clockCycles);
      if (better) {
        best.feasible = true;
        config.numPartitions = p + 1;
        best.config = config;
        best.achievedDr = sweep[p];
        best.cost = cost;
      }
      break;  // first partition count reaching the target is the cheapest for this g
    }
  }
  return best;
}

}  // namespace scandiag
