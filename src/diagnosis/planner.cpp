#include "diagnosis/planner.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace scandiag {

std::size_t recommendGroupCount(std::size_t chainLength) {
  SCANDIAG_REQUIRE(chainLength >= 1, "empty chain");
  const double ideal = std::sqrt(static_cast<double>(chainLength));
  const double exponent = std::round(std::log2(std::max(ideal, 2.0)));
  const std::size_t pow2 = std::size_t{1} << static_cast<unsigned>(exponent);
  // min(max(pow2, 2), min(64, chainLength)), written without std::clamp: for
  // chainLength 1 the upper bound (1) is below the lower bound (2), which is
  // undefined behavior for clamp — the chain-length cap must win, yielding
  // the single degenerate group a one-cell chain admits.
  const std::size_t cap = std::min<std::size_t>(64, chainLength);
  return std::min(std::max<std::size_t>(pow2, 2), cap);
}

PlanResult planDiagnosis(const ScanTopology& topology,
                         const std::vector<FaultResponse>& sample,
                         const PlanRequest& request) {
  SCANDIAG_REQUIRE(!sample.empty(), "planner needs a calibration sample");
  SCANDIAG_REQUIRE(request.maxPartitions >= 1, "need at least one partition");

  std::vector<std::size_t> groups = request.groupCandidates;
  if (groups.empty()) {
    for (std::size_t g : {4u, 8u, 16u, 32u, 64u}) {
      if (g <= topology.maxChainLength()) groups.push_back(g);
    }
    if (groups.empty()) groups.push_back(2);
  }

  PlanResult best;
  for (std::size_t g : groups) {
    DiagnosisConfig config;
    config.scheme = request.scheme;
    config.numPartitions = request.maxPartitions;
    config.groupsPerPartition = g;
    config.numPatterns = request.numPatterns;
    const DiagnosisPipeline pipeline(topology, config);
    const std::vector<double> sweep = pipeline.evaluateSweep(sample);
    for (std::size_t p = 0; p < sweep.size(); ++p) {
      if (sweep[p] > request.targetDr) continue;
      DiagnosisCost cost = partitionRunCost(p + 1, g, request.numPatterns,
                                            topology.maxChainLength());
      const bool better =
          !best.feasible || cost.sessions < best.cost.sessions ||
          (cost.sessions == best.cost.sessions && cost.clockCycles < best.cost.clockCycles);
      if (better) {
        best.feasible = true;
        best.config = config;
        best.config.numPartitions = p + 1;
        best.achievedDr = sweep[p];
        best.cost = cost;
      }
      break;  // first partition count reaching the target is the cheapest for this g
    }
  }
  return best;
}

}  // namespace scandiag
