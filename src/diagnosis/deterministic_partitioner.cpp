#include "diagnosis/deterministic_partitioner.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace scandiag {

DeterministicIntervalPartitioner::DeterministicIntervalPartitioner(
    const DeterministicIntervalConfig& config, std::size_t chainLength, std::size_t groupCount)
    : chainLength_(chainLength), groupCount_(groupCount) {
  SCANDIAG_REQUIRE(chainLength >= 1, "empty scan chain");
  SCANDIAG_REQUIRE(groupCount >= 1 && groupCount <= chainLength,
                   "group count must be in [1, chain length]");
  SCANDIAG_REQUIRE(config.rotationFraction >= 0.0 && config.rotationFraction < 1.0,
                   "rotation fraction must be in [0, 1)");
  intervalLength_ = (chainLength + groupCount - 1) / groupCount;
  rotationStep_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(config.rotationFraction *
                                               static_cast<double>(intervalLength_))));
}

Partition DeterministicIntervalPartitioner::next() {
  obs::PhaseScope phase(obs::Phase::PartitionGen);
  obs::count(obs::Counter::PartitionsGenerated);
  // Group of position pos = ((pos + offset) / intervalLength) mod groups:
  // equal intervals whose boundaries rotate by rotationStep per partition.
  // The first and last groups may wrap, matching [8]'s "boundary cases".
  const std::size_t offset = (partitionIndex_ * rotationStep_) % chainLength_;
  ++partitionIndex_;
  Partition p;
  p.groups.assign(groupCount_, BitVector(chainLength_));
  for (std::size_t pos = 0; pos < chainLength_; ++pos) {
    const std::size_t g = ((pos + offset) / intervalLength_) % groupCount_;
    p.groups[g].set(pos);
  }
  return p;
}

}  // namespace scandiag
