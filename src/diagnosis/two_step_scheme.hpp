// Two-step partitioning — the paper's contribution (§2.2, §3).
//
// Step 1: a small number of interval-based partitions give coarse-grained
// resolution fast (a clustered fault cone is confined to a few consecutive
// intervals). Step 2: the remaining partitions come from random selection,
// whose fine-grained randomness keeps shrinking the candidate set long after
// intervals stop helping (two cells at opposite chain ends can never share an
// interval but often share a random group). The hardware cost over [5] is two
// counters; switching step is "simply disabling Shift Counter 2 and Test
// Counter 2 or bypassing them".
#pragma once

#include <memory>
#include <vector>

#include "diagnosis/interval_partitioner.hpp"
#include "diagnosis/random_selection_partitioner.hpp"

namespace scandiag {

enum class SchemeKind {
  IntervalBased,
  RandomSelection,
  TwoStep,
  /// Fixed-length rotated intervals (Bayraktaroglu & Orailoglu [8] baseline).
  DeterministicInterval,
  /// Online entropy-greedy scheduling: the next partition is chosen per fault
  /// from a deterministic candidate pool after observing each verdict row
  /// (AdaptivePlanner; docs/ARCHITECTURE.md §14). Has no fixed schedule, so
  /// makeScheme()/buildPartitions() reject it.
  Adaptive,
};

std::string schemeName(SchemeKind kind);

/// Inverse of schemeName, also accepting the CLI short names
/// (interval|random|two-step|deterministic|adaptive). Throws
/// std::invalid_argument with the accepted spellings on anything else.
SchemeKind parseSchemeKind(const std::string& name);

/// Candidate-pool and scoring knobs for SchemeKind::Adaptive. Every field is
/// a deterministic input to pool construction and scoring: two runs with
/// equal configs choose identical schedules for identical verdicts, at any
/// thread count.
struct AdaptivePoolConfig {
  /// Independent random-selection seed streams per group count. Seed k of the
  /// pool is randomSeed advanced by k odd strides, so streams never collide.
  std::size_t seedPool = 3;
  /// Interval partitions per group count (successive covering seeds, same
  /// rule as the fixed interval scheme).
  std::size_t intervalCandidates = 2;
  /// Group counts offered to the scorer; empty = {groupsPerPartition}. Mixed
  /// counts trade per-step information against per-step session cost.
  std::vector<std::size_t> groupCandidates;
  /// Total session budget per fault; 0 = numPartitions * groupsPerPartition
  /// (equal tester time to the fixed schedule it replaces).
  std::size_t sessionBudget = 0;
  /// Score bonus (bits/session) for interval candidates while no verdict has
  /// been observed yet. The uniform-survivor model cannot see that fault
  /// cones cluster on the chain (the paper's §2.2 argument for step 1), so
  /// the blind first pick gets a thumb on the interval side of the scale.
  double intervalPrior = 0.1;
  /// Assumed failing-position spread before the first observed verdict row
  /// (afterwards the max observed failing-group count takes over).
  std::size_t spreadPrior = 2;
  /// Test hook: take the pool in index order instead of by score, with the
  /// pool reduced to the fixed TwoStep schedule — reproduces
  /// SchemeKind::TwoStep bit-for-bit (parity tests).
  bool forceFixedOrder = false;
};

struct SchemeConfig {
  LfsrConfig lfsr{/*degree=*/16, /*tapMask=*/0};
  std::uint64_t randomSeed = 0xACE1;
  std::uint64_t intervalStartSeed = 0xBEEF;
  unsigned rlen = 0;  // 0 = auto
  /// Partitions taken from the interval step before switching to random
  /// selection (the paper uses 1 in its simulations).
  std::size_t intervalPartitions = 1;
  /// Knobs for SchemeKind::Adaptive (ignored by the fixed schemes).
  AdaptivePoolConfig adaptive{};
};

class TwoStepScheme final : public PartitionScheme {
 public:
  TwoStepScheme(const SchemeConfig& config, std::size_t chainLength, std::size_t groupCount);

  Partition next() override;
  std::string name() const override { return "two-step"; }

 private:
  std::size_t intervalRemaining_;
  IntervalPartitioner interval_;
  RandomSelectionPartitioner random_;
};

/// Factory covering all three schemes of the paper's comparison.
std::unique_ptr<PartitionScheme> makeScheme(SchemeKind kind, const SchemeConfig& config,
                                            std::size_t chainLength, std::size_t groupCount);

}  // namespace scandiag
