// Two-step partitioning — the paper's contribution (§2.2, §3).
//
// Step 1: a small number of interval-based partitions give coarse-grained
// resolution fast (a clustered fault cone is confined to a few consecutive
// intervals). Step 2: the remaining partitions come from random selection,
// whose fine-grained randomness keeps shrinking the candidate set long after
// intervals stop helping (two cells at opposite chain ends can never share an
// interval but often share a random group). The hardware cost over [5] is two
// counters; switching step is "simply disabling Shift Counter 2 and Test
// Counter 2 or bypassing them".
#pragma once

#include <memory>

#include "diagnosis/interval_partitioner.hpp"
#include "diagnosis/random_selection_partitioner.hpp"

namespace scandiag {

enum class SchemeKind {
  IntervalBased,
  RandomSelection,
  TwoStep,
  /// Fixed-length rotated intervals (Bayraktaroglu & Orailoglu [8] baseline).
  DeterministicInterval,
};

std::string schemeName(SchemeKind kind);

/// Inverse of schemeName, also accepting the CLI short names
/// (interval|random|two-step|deterministic). Throws std::invalid_argument
/// with the accepted spellings on anything else.
SchemeKind parseSchemeKind(const std::string& name);

struct SchemeConfig {
  LfsrConfig lfsr{/*degree=*/16, /*tapMask=*/0};
  std::uint64_t randomSeed = 0xACE1;
  std::uint64_t intervalStartSeed = 0xBEEF;
  unsigned rlen = 0;  // 0 = auto
  /// Partitions taken from the interval step before switching to random
  /// selection (the paper uses 1 in its simulations).
  std::size_t intervalPartitions = 1;
};

class TwoStepScheme final : public PartitionScheme {
 public:
  TwoStepScheme(const SchemeConfig& config, std::size_t chainLength, std::size_t groupCount);

  Partition next() override;
  std::string name() const override { return "two-step"; }

 private:
  std::size_t intervalRemaining_;
  IntervalPartitioner interval_;
  RandomSelectionPartitioner random_;
};

/// Factory covering all three schemes of the paper's comparison.
std::unique_ptr<PartitionScheme> makeScheme(SchemeKind kind, const SchemeConfig& config,
                                            std::size_t chainLength, std::size_t groupCount);

}  // namespace scandiag
