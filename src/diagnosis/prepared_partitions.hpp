// Prepared (pre-indexed) partition schedule for the per-fault hot path.
//
// A diagnosis run applies the same partition sequence to every fault, but the
// per-position group-index tables the session engine and the superposition
// pruner need used to be rebuilt per (fault × partition) — pure O(chainLength)
// allocation and fill on the path that runs 500+ times per DR experiment.
// PreparedPartitionSet computes every partition's groupTable() exactly once,
// at construction, and is immutable afterwards: it can be shared read-only
// across faults and across thread-pool workers with no synchronization
// (the same ownership rule as the topology and the good-machine data; see
// docs/ARCHITECTURE.md "Hot-path memory discipline").
//
// Construction also validates the schedule — groupTable() asserts that the
// groups of each partition are disjoint and cover every position — so a
// pipeline holding a PreparedPartitionSet never carries a malformed schedule.
#pragma once

#include <cstddef>
#include <vector>

#include "diagnosis/partition.hpp"

namespace scandiag {

class PreparedPartitionSet {
 public:
  PreparedPartitionSet() = default;

  /// Takes ownership of the schedule and builds one group table per
  /// partition (one O(chainLength) pass each, done once for all faults).
  explicit PreparedPartitionSet(std::vector<Partition> partitions);

  std::size_t size() const { return partitions_.size(); }
  bool empty() const { return partitions_.empty(); }

  const std::vector<Partition>& partitions() const { return partitions_; }
  const Partition& partition(std::size_t p) const { return partitions_[p]; }
  const Partition& operator[](std::size_t p) const { return partitions_[p]; }

  /// table[pos] = group index containing `pos` in partition `p`; identical to
  /// partitions()[p].groupTable() but computed once per schedule, not per call.
  const std::vector<std::size_t>& groupTable(std::size_t p) const { return tables_[p]; }

 private:
  std::vector<Partition> partitions_;
  std::vector<std::vector<std::size_t>> tables_;  // [partition][position]
};

}  // namespace scandiag
