// Prepared (pre-indexed) partition schedule for the per-fault hot path.
//
// A diagnosis run applies the same partition sequence to every fault, but the
// per-position group-index tables the session engine and the superposition
// pruner need used to be rebuilt per (fault × partition) — pure O(chainLength)
// allocation and fill on the path that runs 500+ times per DR experiment.
// PreparedPartitionSet computes every partition's groupTable() exactly once,
// at construction, and is immutable afterwards: it can be shared read-only
// across faults and across thread-pool workers with no synchronization
// (the same ownership rule as the topology and the good-machine data; see
// docs/ARCHITECTURE.md "Hot-path memory discipline").
//
// On top of the per-partition tables it builds the *batch layout* the batched
// MISR scorer (SessionEngine::runBatched, docs/ARCHITECTURE.md §11) keys on:
// groups of all partitions are numbered globally (groupOffset(p) + g) and a
// transposed flat table stores, per shift position, the global group id the
// position belongs to in every partition — contiguously, so scoring a fault
// is one pass over its failing positions with a unit-stride inner loop over
// the schedule instead of a per-group membership scan per session.
//
// Construction also validates the schedule — groupTable() asserts that the
// groups of each partition are disjoint and cover every position — so a
// pipeline holding a PreparedPartitionSet never carries a malformed schedule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "diagnosis/partition.hpp"

namespace scandiag {

class PreparedPartitionSet {
 public:
  PreparedPartitionSet() = default;

  /// Takes ownership of the schedule and builds one group table per
  /// partition (one O(chainLength) pass each, done once for all faults).
  explicit PreparedPartitionSet(std::vector<Partition> partitions);

  std::size_t size() const { return partitions_.size(); }
  bool empty() const { return partitions_.empty(); }

  const std::vector<Partition>& partitions() const { return partitions_; }
  const Partition& partition(std::size_t p) const { return partitions_[p]; }
  const Partition& operator[](std::size_t p) const { return partitions_[p]; }

  /// table[pos] = group index containing `pos` in partition `p`; identical to
  /// partitions()[p].groupTable() but computed once per schedule, not per call.
  const std::vector<std::size_t>& groupTable(std::size_t p) const { return tables_[p]; }

  // -- Batch layout (global group numbering + transposed position table). ---

  /// True when every partition spans the same selection axis, so the flat
  /// transposed table below exists. Schedules built by buildPartitions()
  /// always qualify; a hand-assembled mixed-length schedule falls back to the
  /// per-session scorer.
  bool batchReady() const { return batchReady_; }

  /// Total sessions of the schedule (sum of groupCount() over partitions).
  std::size_t totalGroups() const { return totalGroups_; }

  /// First global group id of partition `p`; global id = groupOffset(p) + g.
  std::size_t groupOffset(std::size_t p) const { return groupOffsets_[p]; }

  /// The `size()` global group ids position `pos` belongs to, one per
  /// partition, contiguous (transposed layout: one cache-friendly read per
  /// failing position covers the whole schedule). Valid iff batchReady().
  const std::uint32_t* groupsAtPosition(std::size_t pos) const {
    return posGroups_.data() + pos * partitions_.size();
  }

 private:
  std::vector<Partition> partitions_;
  std::vector<std::vector<std::size_t>> tables_;  // [partition][position]
  bool batchReady_ = false;
  std::size_t totalGroups_ = 0;
  std::vector<std::size_t> groupOffsets_;  // [partition + 1]
  std::vector<std::uint32_t> posGroups_;   // [position * size() + partition]
};

}  // namespace scandiag
