// BIST session emulation: per-group pass/fail verdicts and error signatures.
//
// For a partition of b groups the tester runs b sessions; in session g only
// the cells of group g reach the MISR. Because the applied patterns are
// identical in every session, the captured data never changes — only the
// masking does — so instead of re-simulating the circuit per session we
// derive every verdict from the fault's per-cell error streams:
//
//  * Exact mode ("no aliasing"): a group fails iff some selected cell has at
//    least one error bit. This matches comparing full response streams and is
//    the paper's working assumption for the DR tables.
//  * MISR mode: a group's 16-bit (configurable) error signature is computed
//    through the GF(2)-linear MISR model; the group fails iff the signature
//    is nonzero. Aliasing (a nonzero error stream compacting to signature 0)
//    becomes possible, exactly as in silicon (bench_ablation_aliasing).
//
// Error signatures are also the input to the superposition pruner; in exact
// mode they can be computed on the side with a wider register so pruning
// stays available without injecting aliasing into the verdicts.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "bist/misr.hpp"
#include "bist/space_compactor.hpp"
#include "bist/scan_topology.hpp"
#include "diagnosis/partition.hpp"
#include "diagnosis/prepared_partitions.hpp"
#include "sim/fault_simulator.hpp"

namespace scandiag {

enum class SignatureMode {
  Exact,  // group fails iff any selected error bit
  Misr,   // group fails iff MISR error signature != 0
};

struct SessionConfig {
  SignatureMode mode = SignatureMode::Exact;
  std::size_t numPatterns = 128;
  /// Verdict MISR (mode == Misr).
  unsigned misrDegree = 16;
  std::uint64_t misrTapMask = 0;  // 0 = primitive polynomial of misrDegree
  /// Compute per-group error signatures for the superposition pruner.
  bool computeSignatures = false;
  /// Signature width used for pruning in Exact mode (wider = less chance of
  /// pruning away a true failing cell by XOR cancellation).
  unsigned pruneDegree = 32;
  /// Optional space compactor between the scan-out lines and the MISR (must
  /// outlive the engine). Null = one MISR input per chain.
  const SpaceCompactor* compactor = nullptr;
};

struct GroupVerdicts {
  /// failing[p].test(g): group g of partition p failed.
  std::vector<BitVector> failing;
  /// errorSig[p][g]: group error signature (present iff hasSignatures).
  std::vector<std::vector<std::uint64_t>> errorSig;
  bool hasSignatures = false;
  unsigned signatureDegree = 0;
};

/// One partition's worth of session results (the retry granularity: a tester
/// re-run repeats the b sessions of one partition, not the whole schedule).
struct PartitionVerdictRow {
  BitVector failing;                    // failing.test(g): group g failed
  std::vector<std::uint64_t> errorSig;  // empty unless signatures are computed
};

class SessionEngine {
 public:
  SessionEngine(const ScanTopology& topology, const SessionConfig& config);

  const ScanTopology& topology() const { return *topology_; }
  const SessionConfig& config() const { return config_; }

  /// Hot-path entry point: group tables come precomputed from the prepared
  /// schedule, so a signature-mode run does no per-(fault × partition) table
  /// rebuild. Bit-identical to the std::vector<Partition> overload.
  GroupVerdicts run(const PreparedPartitionSet& prepared, const FaultResponse& response) const;

  /// Convenience overload for callers holding a bare schedule (tests, one-off
  /// diagnoses): rebuilds each partition's group table per call.
  GroupVerdicts run(const std::vector<Partition>& partitions,
                    const FaultResponse& response) const;

  /// Re-runs the sessions of one partition (same patterns, same capture data
  /// — on a noiseless tester this reproduces run()'s row for that partition
  /// bit-for-bit). This is the unit the recovery layer re-executes when a
  /// session verdict is suspect.
  PartitionVerdictRow runPartition(const Partition& partition,
                                   const FaultResponse& response) const;

  /// Prepared-schedule runPartition: same row, no group-table rebuild.
  PartitionVerdictRow runPartition(const PreparedPartitionSet& prepared, std::size_t index,
                                   const FaultResponse& response) const;

  /// Per-cell error signature of one failing cell (line = its chain, cycle =
  /// pattern * maxChainLength + position). Exposed for tests.
  std::uint64_t cellErrorSignature(std::size_t cell, const BitVector& errorStream) const;

 private:
  const MisrLinearModel& model() const;
  void prepareCells(const FaultResponse& response, bool needSignatures,
                    BitVector& failingPositions, std::vector<std::size_t>& cellPos,
                    std::vector<std::uint64_t>& cellSig) const;
  /// `groupTable` may be null: signature bucketing then rebuilds the table
  /// from the partition (the non-prepared fallback path).
  PartitionVerdictRow computeRow(const Partition& partition, const BitVector& failingPositions,
                                 const std::vector<std::size_t>& cellPos,
                                 const std::vector<std::uint64_t>& cellSig, bool needSignatures,
                                 const std::vector<std::size_t>* groupTable) const;
  GroupVerdicts runImpl(const std::vector<Partition>& partitions,
                        const PreparedPartitionSet* prepared,
                        const FaultResponse& response) const;
  PartitionVerdictRow runPartitionImpl(const Partition& partition,
                                       const std::vector<std::size_t>* groupTable,
                                       const FaultResponse& response) const;

  const ScanTopology* topology_;
  SessionConfig config_;
  // Lazy (big precompute, only needed in signature modes); call_once so
  // concurrent run() calls from the thread pool race-freely share one model.
  mutable std::once_flag modelOnce_;
  mutable std::unique_ptr<MisrLinearModel> model_;
};

}  // namespace scandiag
