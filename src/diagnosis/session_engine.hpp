// BIST session emulation: per-group pass/fail verdicts and error signatures.
//
// For a partition of b groups the tester runs b sessions; in session g only
// the cells of group g reach the MISR. Because the applied patterns are
// identical in every session, the captured data never changes — only the
// masking does — so instead of re-simulating the circuit per session we
// derive every verdict from the fault's per-cell error streams:
//
//  * Exact mode ("no aliasing"): a group fails iff some selected cell has at
//    least one error bit. This matches comparing full response streams and is
//    the paper's working assumption for the DR tables.
//  * MISR mode: a group's 16-bit (configurable) error signature is computed
//    through the GF(2)-linear MISR model; the group fails iff the signature
//    is nonzero. Aliasing (a nonzero error stream compacting to signature 0)
//    becomes possible, exactly as in silicon (bench_ablation_aliasing).
//
// Error signatures are also the input to the superposition pruner; in exact
// mode they can be computed on the side with a wider register so pruning
// stays available without injecting aliasing into the verdicts.
//
// Two scorers produce these verdicts (SessionConfig::scorer):
//
//  * **Batched** (default hot path): MISR linearity means a session's error
//    signature is the XOR of its cells' individual error signatures, and the
//    group-membership structure is fixed per schedule — so ALL groups of ALL
//    partitions are scored in one pass over the fault's failing cells against
//    the PreparedPartitionSet's transposed position→global-group table, one
//    XOR (or one bit-set) per (cell, partition). No per-group membership scan
//    ever runs. See docs/ARCHITECTURE.md §11.
//  * **PerSession** (reference): the literal one-session-at-a-time evaluation
//    (per-group intersects / per-partition signature bucketing). Kept as the
//    parity oracle — tests/diagnosis/batched_parity_test holds the two
//    bit-identical across schemes, circuits, thread counts, pruning, and
//    noise — and as the fallback for bare (unprepared) schedules and the
//    per-partition retry path of the recovery layer.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "bist/misr.hpp"
#include "bist/space_compactor.hpp"
#include "bist/scan_topology.hpp"
#include "diagnosis/partition.hpp"
#include "diagnosis/prepared_partitions.hpp"
#include "sim/fault_simulator.hpp"

namespace scandiag {

enum class SignatureMode {
  Exact,  // group fails iff any selected error bit
  Misr,   // group fails iff MISR error signature != 0
};

enum class SessionScorer {
  Batched,     // one-pass scoring over the prepared schedule (hot path)
  PerSession,  // per-group reference evaluation (parity oracle / fallback)
};

struct SessionConfig {
  SignatureMode mode = SignatureMode::Exact;
  std::size_t numPatterns = 128;
  /// Verdict MISR (mode == Misr).
  unsigned misrDegree = 16;
  std::uint64_t misrTapMask = 0;  // 0 = primitive polynomial of misrDegree
  /// Compute per-group error signatures for the superposition pruner.
  bool computeSignatures = false;
  /// Signature width used for pruning in Exact mode (wider = less chance of
  /// pruning away a true failing cell by XOR cancellation).
  unsigned pruneDegree = 32;
  /// Optional space compactor between the scan-out lines and the MISR (must
  /// outlive the engine). Null = one MISR input per chain.
  const SpaceCompactor* compactor = nullptr;
  /// Which scorer run(prepared, ...) dispatches to. PerSession forces the
  /// reference path everywhere (parity tests, A/B benches).
  SessionScorer scorer = SessionScorer::Batched;
};

struct GroupVerdicts {
  /// failing[p].test(g): group g of partition p failed.
  std::vector<BitVector> failing;
  /// errorSig[p][g]: group error signature (present iff hasSignatures).
  std::vector<std::vector<std::uint64_t>> errorSig;
  bool hasSignatures = false;
  unsigned signatureDegree = 0;
};

/// One partition's worth of session results (the retry granularity: a tester
/// re-run repeats the b sessions of one partition, not the whole schedule).
struct PartitionVerdictRow {
  BitVector failing;                    // failing.test(g): group g failed
  std::vector<std::uint64_t> errorSig;  // empty unless signatures are computed
};

/// Reusable buffers for the batched scorer. One lives on each thread-pool
/// worker's stack for a whole chunk of faults (DiagnosisPipeline::evaluate),
/// so the steady state allocates nothing per fault. Never shared across
/// threads.
struct SessionBatchScratch {
  BitVector failingPositions;
  std::vector<std::size_t> cellPos;
  std::vector<std::uint64_t> cellSig;
  /// Flat per-global-group scoreboards (PreparedPartitionSet numbering).
  BitVector groupFail;
  std::vector<std::uint64_t> flatSig;
};

class SessionEngine {
 public:
  SessionEngine(const ScanTopology& topology, const SessionConfig& config);

  const ScanTopology& topology() const { return *topology_; }
  const SessionConfig& config() const { return config_; }

  /// Hot-path entry point: dispatches to the batched scorer (default) or the
  /// per-session reference per config().scorer; a prepared set without the
  /// batch layout (batchReady() == false) also falls back to the reference.
  /// Both scorers are bit-identical. `scratch` (optional) reuses buffers
  /// across calls on the batched path.
  GroupVerdicts run(const PreparedPartitionSet& prepared, const FaultResponse& response,
                    SessionBatchScratch* scratch = nullptr) const;

  /// One-pass batched scorer (requires prepared.batchReady()).
  GroupVerdicts runBatched(const PreparedPartitionSet& prepared, const FaultResponse& response,
                           SessionBatchScratch* scratch = nullptr) const;

  /// Per-session reference scorer over a prepared schedule — the parity
  /// oracle runBatched() is tested against, regardless of config().scorer.
  GroupVerdicts runReference(const PreparedPartitionSet& prepared,
                             const FaultResponse& response) const;

  /// Convenience overload for callers holding a bare schedule (tests, one-off
  /// diagnoses): rebuilds each partition's group table per call. Always the
  /// per-session reference.
  GroupVerdicts run(const std::vector<Partition>& partitions,
                    const FaultResponse& response) const;

  /// Re-runs the sessions of one partition (same patterns, same capture data
  /// — on a noiseless tester this reproduces run()'s row for that partition
  /// bit-for-bit). This is the unit the recovery layer re-executes when a
  /// session verdict is suspect; always the per-session reference path.
  PartitionVerdictRow runPartition(const Partition& partition,
                                   const FaultResponse& response) const;

  /// Prepared-schedule runPartition: same row, no group-table rebuild.
  PartitionVerdictRow runPartition(const PreparedPartitionSet& prepared, std::size_t index,
                                   const FaultResponse& response) const;

  /// Per-cell error signature of one failing cell (line = its chain, cycle =
  /// pattern * maxChainLength + position). Exposed for tests.
  std::uint64_t cellErrorSignature(std::size_t cell, const BitVector& errorStream) const;

 private:
  const MisrLinearModel& model() const;
  /// Per-cell signature-contribution table: contributions()[cell * patterns
  /// + t] is the final-signature weight of an error in `cell` at pattern t
  /// (compactor columns folded in). Built once per engine under call_once;
  /// null when the topology is too large for the table (the batched scorer
  /// then computes signatures through the per-bit model path — identical
  /// values, just without the precomputed gather).
  const std::uint64_t* contributions() const;
  void prepareCells(const FaultResponse& response, bool needSignatures,
                    BitVector& failingPositions, std::vector<std::size_t>& cellPos,
                    std::vector<std::uint64_t>& cellSig,
                    const std::uint64_t* contribTable) const;
  /// `groupTable` may be null: signature bucketing then rebuilds the table
  /// from the partition (the non-prepared fallback path).
  PartitionVerdictRow computeRow(const Partition& partition, const BitVector& failingPositions,
                                 const std::vector<std::size_t>& cellPos,
                                 const std::vector<std::uint64_t>& cellSig, bool needSignatures,
                                 const std::vector<std::size_t>* groupTable) const;
  GroupVerdicts runImpl(const std::vector<Partition>& partitions,
                        const PreparedPartitionSet* prepared,
                        const FaultResponse& response) const;
  PartitionVerdictRow runPartitionImpl(const Partition& partition,
                                       const std::vector<std::size_t>* groupTable,
                                       const FaultResponse& response) const;

  const ScanTopology* topology_;
  SessionConfig config_;
  // Lazy (big precompute, only needed in signature modes); call_once so
  // concurrent run() calls from the thread pool race-freely share one model.
  mutable std::once_flag modelOnce_;
  mutable std::unique_ptr<MisrLinearModel> model_;
  // Lazy per-cell contribution table (batched scorer); same sharing rule.
  mutable std::once_flag contribOnce_;
  mutable std::vector<std::uint64_t> contrib_;
  mutable bool contribReady_ = false;
};

}  // namespace scandiag
