#include "diagnosis/experiment_driver.hpp"

#include "common/assert.hpp"
#include "common/journal.hpp"
#include "common/thread_pool.hpp"
#include "diagnosis/adaptive_planner.hpp"
#include "obs/metrics.hpp"
#include "sim/fault_list.hpp"

namespace scandiag {

SessionConfig sessionConfigFor(const DiagnosisConfig& config) {
  SessionConfig sc;
  sc.mode = config.mode;
  sc.numPatterns = config.numPatterns;
  sc.misrDegree = config.misrDegree;
  sc.misrTapMask = config.misrTapMask;
  sc.computeSignatures = config.pruning;
  sc.pruneDegree = config.pruneDegree;
  sc.scorer = config.batchedScoring ? SessionScorer::Batched : SessionScorer::PerSession;
  return sc;
}

std::vector<Partition> buildPartitions(const DiagnosisConfig& config, std::size_t chainLength) {
  auto scheme =
      makeScheme(config.scheme, config.schemeConfig, chainLength, config.groupsPerPartition);
  return takePartitions(*scheme, config.numPartitions);
}

DiagnosisPipeline::DiagnosisPipeline(const ScanTopology& topology, const DiagnosisConfig& config)
    : topology_(&topology),
      config_(config),
      prepared_(config.scheme == SchemeKind::Adaptive
                    ? PreparedPartitionSet{}
                    : PreparedPartitionSet(buildPartitions(config, topology.maxChainLength()))),
      engine_(topology, sessionConfigFor(config)),
      analyzer_(topology),
      pruner_(topology) {
  if (config.scheme == SchemeKind::Adaptive) {
    adaptive_ = std::make_unique<AdaptivePlanner>(topology, config);
  }
}

DiagnosisPipeline::~DiagnosisPipeline() = default;

FaultDiagnosis DiagnosisPipeline::adaptiveDiagnose(const FaultResponse& response,
                                                   std::uint64_t* verdictDigest) const {
  obs::count(obs::Counter::FaultsDiagnosed);
  AdaptiveOutcome outcome = adaptive_->run(response);
  if (verdictDigest) {
    // Audit fingerprint over the *realized* schedule: which pool candidate
    // each step picked, plus its verdict row — a resumed run replays the same
    // greedy trajectory or the digest mismatch flags it.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t s = 0; s < outcome.chosen.size(); ++s) {
      h = fnv1a64(static_cast<std::uint64_t>(outcome.chosen[s]), h);
      const BitVector& row = outcome.verdicts.failing[s];
      for (std::size_t w = 0; w < row.wordCount(); ++w) h = fnv1a64(row.word(w), h);
    }
    *verdictDigest = h;
  }
  FaultDiagnosis out;
  out.candidates = std::move(outcome.candidates);
  out.candidateCount = out.candidates.cellCount();
  out.actualCount = response.failingCellCount();
  out.sessionsSpent = outcome.sessionsUsed;
  return out;
}

FaultDiagnosis DiagnosisPipeline::diagnose(const FaultResponse& response) const {
  if (adaptive_) {
    // Session runs dominate the adaptive loop; scoring rides along in the
    // same phase (the loop interleaves compare and intersection by design).
    obs::PhaseScope phase(obs::Phase::SignatureCompare);
    return adaptiveDiagnose(response, nullptr);
  }
  // The public single-fault entry point carries the phase timers; the batch
  // drivers below go through diagnoseUntimed() because per-fault clock reads
  // cost ~5-10% of a microsecond-scale diagnosis (counters are relaxed
  // atomics and stay on every path — they are the deterministic section).
  obs::count(obs::Counter::FaultsDiagnosed);
  GroupVerdicts verdicts;
  {
    obs::PhaseScope phase(obs::Phase::SignatureCompare);
    verdicts = engine_.run(prepared_, response);
  }
  FaultDiagnosis out;
  {
    obs::PhaseScope phase(obs::Phase::CandidateIntersection);
    out.candidates = analyzer_.analyze(prepared_.partitions(), verdicts);
    if (config_.pruning) {
      out.candidates = pruner_.prune(prepared_, verdicts, out.candidates);
    }
  }
  out.candidateCount = out.candidates.cellCount();
  out.actualCount = response.failingCellCount();
  return out;
}

FaultDiagnosis DiagnosisPipeline::diagnoseUntimed(const FaultResponse& response,
                                                  SessionBatchScratch* scratch) const {
  if (adaptive_) return adaptiveDiagnose(response, nullptr);
  obs::count(obs::Counter::FaultsDiagnosed);
  const GroupVerdicts verdicts = engine_.run(prepared_, response, scratch);
  FaultDiagnosis out;
  out.candidates = analyzer_.analyze(prepared_.partitions(), verdicts);
  if (config_.pruning) {
    out.candidates = pruner_.prune(prepared_, verdicts, out.candidates);
  }
  out.candidateCount = out.candidates.cellCount();
  out.actualCount = response.failingCellCount();
  return out;
}

FaultDiagnosis DiagnosisPipeline::diagnoseDigested(const FaultResponse& response,
                                                   std::uint64_t* verdictDigest) const {
  if (adaptive_) return adaptiveDiagnose(response, verdictDigest);
  obs::count(obs::Counter::FaultsDiagnosed);
  const GroupVerdicts verdicts = engine_.run(prepared_, response);
  if (verdictDigest) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const BitVector& row : verdicts.failing) {
      for (std::size_t w = 0; w < row.wordCount(); ++w) h = fnv1a64(row.word(w), h);
    }
    *verdictDigest = h;
  }
  FaultDiagnosis out;
  out.candidates = analyzer_.analyze(prepared_.partitions(), verdicts);
  if (config_.pruning) {
    out.candidates = pruner_.prune(prepared_, verdicts, out.candidates);
  }
  out.candidateCount = out.candidates.cellCount();
  out.actualCount = response.failingCellCount();
  return out;
}

DrReport DiagnosisPipeline::evaluate(const std::vector<FaultResponse>& responses,
                                     const RunControl& control) const {
  // Faults are independent: slot i depends only on responses[i], so the
  // parallel loop writes disjoint slots and the accumulation below runs in
  // fault-index order — DR output is bit-identical for every thread count.
  struct Slot {
    std::size_t candidates = 0;
    std::size_t actual = 0;
    bool detected = false;
  };
  std::vector<Slot> slots(responses.size());
  // Range (not element) dispatch: one contiguous fault chunk per worker lane,
  // with the batch scorer's scratch living on the worker's stack for the
  // whole chunk — no per-fault allocation, no cross-worker cache-line
  // traffic on scratch state.
  globalPool().parallelForRange(responses.size(), [&](std::size_t begin, std::size_t end) {
    SessionBatchScratch scratch;
    for (std::size_t i = begin; i < end; ++i) {
      const FaultResponse& r = responses[i];
      if (!r.detected()) continue;
      control.throwIfStopped();
      const FaultDiagnosis d = diagnoseUntimed(r, &scratch);
      slots[i] = Slot{d.candidateCount, d.actualCount, true};
    }
  });
  DrAccumulator acc;
  for (const Slot& s : slots) {
    if (s.detected) acc.add(s.candidates, s.actual);
  }
  return DrReport{acc.dr(), acc.faults(), acc.sumCandidates(), acc.sumActual()};
}

std::vector<double> DiagnosisPipeline::evaluateSweep(
    const std::vector<FaultResponse>& responses, const RunControl& control) const {
  if (adaptive_) {
    // Anytime curve of the greedy trajectory: prefix p is the candidate count
    // once the cumulative session spend reaches (p+1) * groupsPerPartition —
    // the same tester-time grid the fixed schemes' prefixes sit on. One run
    // per fault serves every prefix (the trajectory does not depend on where
    // it will be cut; candidates are never filtered by remaining budget
    // within a step).
    const std::size_t prefixes = config_.numPartitions;
    const std::size_t sessionsPerPrefix = config_.groupsPerPartition;
    const std::size_t allCells = topology_->numCells();
    std::vector<std::vector<std::size_t>> prefixCandidates(responses.size());
    globalPool().parallelForRange(responses.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const FaultResponse& r = responses[i];
        if (!r.detected()) continue;
        control.throwIfStopped();
        obs::count(obs::Counter::FaultsDiagnosed);
        const AdaptiveOutcome outcome = adaptive_->run(r);
        std::vector<std::size_t>& counts = prefixCandidates[i];
        counts.reserve(prefixes);
        std::size_t step = 0;
        std::size_t current = allCells;
        for (std::size_t p = 0; p < prefixes; ++p) {
          const std::size_t budget = (p + 1) * sessionsPerPrefix;
          while (step < outcome.steps.size() &&
                 outcome.steps[step].cumulativeSessions <= budget) {
            current = outcome.steps[step].survivorCells;
            ++step;
          }
          counts.push_back(current);
        }
      }
    });
    std::vector<DrAccumulator> acc(prefixes);
    for (std::size_t i = 0; i < responses.size(); ++i) {
      if (!responses[i].detected()) continue;
      const std::size_t actual = responses[i].failingCellCount();
      for (std::size_t p = 0; p < prefixes; ++p) acc[p].add(prefixCandidates[i][p], actual);
    }
    std::vector<double> dr;
    dr.reserve(acc.size());
    for (const DrAccumulator& a : acc) dr.push_back(a.dr());
    return dr;
  }
  const std::size_t length = topology_->maxChainLength();
  // Per fault, the candidate count after each partition prefix; reduced into
  // the per-prefix accumulators in fault-index order below (same ordered-
  // reduction contract as evaluate()).
  std::vector<std::vector<std::size_t>> prefixCandidates(responses.size());
  const std::vector<Partition>& partitions = prepared_.partitions();
  // Same per-worker-chunk scratch discipline as evaluate().
  globalPool().parallelForRange(responses.size(), [&](std::size_t begin, std::size_t end) {
    SessionBatchScratch scratch;
    for (std::size_t i = begin; i < end; ++i) {
      const FaultResponse& r = responses[i];
      if (!r.detected()) continue;
      control.throwIfStopped();
      obs::count(obs::Counter::FaultsDiagnosed);
      const GroupVerdicts verdicts = engine_.run(prepared_, r, &scratch);
      BitVector positions(length, true);
      std::vector<std::size_t>& counts = prefixCandidates[i];
      counts.reserve(partitions.size());
      for (std::size_t p = 0; p < partitions.size(); ++p) {
        BitVector failingUnion(length);
        for (std::size_t g = 0; g < partitions[p].groupCount(); ++g) {
          if (verdicts.failing[p].test(g)) failingUnion |= partitions[p].groups[g];
        }
        positions &= failingUnion;
        counts.push_back(topology_->expandPositions(positions).count());
      }
    }
  });
  std::vector<DrAccumulator> acc(partitions.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    if (!responses[i].detected()) continue;
    const std::size_t actual = responses[i].failingCellCount();
    for (std::size_t p = 0; p < partitions.size(); ++p) {
      acc[p].add(prefixCandidates[i][p], actual);
    }
  }
  std::vector<double> dr;
  dr.reserve(acc.size());
  for (const DrAccumulator& a : acc) dr.push_back(a.dr());
  return dr;
}

CircuitWorkload prepareWorkload(const Netlist& netlist, const WorkloadConfig& config,
                                std::size_t numChains) {
  SCANDIAG_REQUIRE(!netlist.dffs().empty(), "workload circuit has no scan cells");
  const PatternSet patterns = generatePatterns(netlist, config.numPatterns, config.prpg);
  const FaultSimulator sim(netlist, patterns);
  const FaultList universe = FaultList::enumerateCollapsed(netlist);
  // Oversample: random patterns typically detect 60-95% of stuck-at faults,
  // so 4x candidates nearly always yields the full target of detected faults.
  const std::vector<FaultSite> candidates =
      universe.sample(std::min(universe.size(), config.numFaults * 4), config.faultSeed);

  CircuitWorkload out;
  out.topology = numChains <= 1 ? ScanTopology::singleChain(netlist.dffs().size())
                                : ScanTopology::blockChains(netlist.dffs().size(), numChains);
  out.responses = sim.collectDetected(candidates, config.numFaults);
  out.patternsApplied = config.numPatterns;
  return out;
}

}  // namespace scandiag
