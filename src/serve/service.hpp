// DiagnosisService: the immutable warm state + per-request compute of
// `scandiag serve`.
//
// Everything expensive is paid once at construction — circuit parse,
// levelization, pattern generation, fault-free simulation, cone caches (as
// they warm), PreparedPartitionSet — and shared read-only across requests.
// The only mutable compute state is the FaultSimulator lease pool:
// FaultSimulator is explicitly single-thread-at-a-time (mutable cone cache +
// scratch, see sim/fault_simulator.hpp), so the service owns N instances and
// handlers lease one per simulate() call, blocking when all are out.
//
// handle() implements the graceful-degradation half of the request
// lifecycle. Partitions are evaluated one at a time through
// SessionEngine::runPartition with the RunControl polled between them; when
// the per-request watchdog trips, the partitions that DID run are fed to
// DiagnosisRecovery — an intersection over fewer partitions is a guaranteed
// superset of the true failing cells — and the reply degrades to DEADLINE
// with confidence scaled by partitionsUsed/partitionsTotal. A cancellation
// that is NOT the watchdog (drain) unwinds as OperationCancelled instead:
// there is no client value in a partial answer the server chose to abandon.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "common/watchdog.hpp"
#include "diagnosis/experiment_driver.hpp"
#include "diagnosis/recovery.hpp"
#include "serve/protocol.hpp"
#include "sim/fault_simulator.hpp"

namespace scandiag::serve {

struct ServiceConfig {
  DiagnosisConfig diagnosis{};
  std::size_t numChains = 1;
  /// FaultSimulator instances in the lease pool. More = more concurrent
  /// InjectFault requests in their simulate() step, at one good-value store
  /// each. 1 keeps cone-cache counters deterministic (bench golden phase).
  std::size_t simulators = 1;
};

class DiagnosisService {
 public:
  DiagnosisService(Netlist netlist, const ServiceConfig& config);

  const Netlist& netlist() const { return netlist_; }
  const ServiceConfig& config() const { return config_; }
  const ScanTopology& topology() const { return topology_; }
  const DiagnosisPipeline& pipeline() const { return pipeline_; }

  /// Serves one request to a terminal reply (Ok / Deadline / Error — never
  /// Busy; admission is the server's job). `deadline` zero means none.
  /// `cancel` (optional) is the drain token; when it trips without the
  /// deadline having tripped, this throws OperationCancelled.
  DiagnoseReply handle(const DiagnoseRequest& request, std::uint64_t requestId,
                       std::chrono::milliseconds deadline, CancellationToken* cancel) const;

 private:
  /// RAII lease of one pool simulator; blocks until one is free.
  class SimulatorLease {
   public:
    explicit SimulatorLease(const DiagnosisService& service);
    ~SimulatorLease();
    const FaultSimulator& operator*() const { return *service_->simulators_[index_]; }

   private:
    const DiagnosisService* service_;
    std::size_t index_;
  };

  DiagnoseReply handleInject(const DiagnoseRequest& request, DiagnoseReply reply,
                             const RunControl& control, const Watchdog* deadline) const;
  DiagnoseReply handleLog(const DiagnoseRequest& request, DiagnoseReply reply,
                          const RunControl& control, const Watchdog* deadline) const;
  /// Defect-zoo scenario: regenerates the (spec, seed, index) scenario
  /// deterministically and diagnoses its permanent union overlay through the
  /// same per-partition deadline-aware loop (intermittent components are
  /// diagnosed at their permanent envelope — the sampling path lives in
  /// DefectZooPipeline, not the service).
  DiagnoseReply handleDefect(const DiagnoseRequest& request, DiagnoseReply reply,
                             const RunControl& control, const Watchdog* deadline) const;
  /// The shared back half: per-partition evaluation of `response` under
  /// `control`, then recovery over the partitions that ran.
  DiagnoseReply diagnoseResponse(const FaultResponse& response, DiagnoseReply reply,
                                 const RunControl& control, const Watchdog* deadline) const;
  DiagnoseReply finishReply(DiagnoseReply reply, const RecoveredDiagnosis& recovered,
                            std::size_t partitionsUsed, bool deadlineHit) const;

  Netlist netlist_;
  ServiceConfig config_;
  ScanTopology topology_;
  PatternSet patterns_;
  DiagnosisPipeline pipeline_;
  DiagnosisRecovery recovery_;

  // Simulator lease pool (see class comment). Mutable: leases are compute-
  // state bookkeeping, not service configuration.
  std::vector<std::unique_ptr<FaultSimulator>> simulators_;
  mutable std::vector<std::size_t> freeSimulators_;
  mutable std::mutex simMutex_;
  mutable std::condition_variable simAvailable_;
};

}  // namespace scandiag::serve
