#include "serve/frame.hpp"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/journal.hpp"  // crc32

namespace scandiag::serve {

namespace {

std::uint32_t getU32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::chrono::steady_clock::time_point deadlineFrom(std::chrono::milliseconds timeout) {
  return std::chrono::steady_clock::now() + timeout;
}

/// Milliseconds until `deadline`, clamped for poll(2); throws on expiry.
int pollBudgetMs(std::chrono::steady_clock::time_point deadline, const char* what) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  if (left.count() <= 0) {
    throw FrameTimeoutError(std::string("frame ") + what + " deadline exceeded");
  }
  constexpr std::int64_t kMaxPoll = 60'000;  // re-check the deadline at least every minute
  return static_cast<int>(left.count() < kMaxPoll ? left.count() : kMaxPoll);
}

void waitReadable(int fd, std::chrono::steady_clock::time_point deadline) {
  for (;;) {
    struct pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, pollBudgetMs(deadline, "read"));
    if (rc > 0) return;  // readable, error, or hangup — read(2) reports which
    if (rc == 0) continue;  // poll slice elapsed; pollBudgetMs re-checks the deadline
    if (errno == EINTR) continue;
    throw FrameIoError(std::string("poll(read): ") + strerror(errno));
  }
}

void waitWritable(int fd, std::chrono::steady_clock::time_point deadline) {
  for (;;) {
    struct pollfd pfd{fd, POLLOUT, 0};
    const int rc = ::poll(&pfd, 1, pollBudgetMs(deadline, "write"));
    if (rc > 0) return;
    if (rc == 0) continue;
    if (errno == EINTR) continue;
    throw FrameIoError(std::string("poll(write): ") + strerror(errno));
  }
}

/// Reads exactly `size` bytes under `deadline`. Returns false on EOF before
/// the first byte (clean close); throws FrameFormatError on EOF mid-buffer.
bool readExact(int fd, char* out, std::size_t size,
               std::chrono::steady_clock::time_point deadline) {
  std::size_t got = 0;
  while (got < size) {
    waitReadable(fd, deadline);
    const ssize_t n = ::read(fd, out + got, size - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (got == 0) return false;
      throw FrameFormatError("peer closed mid-frame (" + std::to_string(got) + " of " +
                             std::to_string(size) + " bytes)");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    throw FrameIoError(std::string("read: ") + strerror(errno));
  }
  return true;
}

void writeAll(int fd, const char* data, std::size_t size,
              std::chrono::steady_clock::time_point deadline) {
  std::size_t sent = 0;
  while (sent < size) {
    waitWritable(fd, deadline);
    // MSG_NOSIGNAL: a peer that hung up mid-write is a FrameIoError (EPIPE)
    // for this request, not a SIGPIPE for the whole process.
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    throw FrameIoError(std::string("write: ") + strerror(errno));
  }
}

}  // namespace

std::string encodeFrame(std::uint16_t type, std::string_view payload) {
  const std::size_t total = 2 + payload.size();  // type tag + message
  if (total > kMaxFramePayload) {
    throw FrameFormatError("frame payload " + std::to_string(total) + " exceeds cap " +
                           std::to_string(kMaxFramePayload));
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + total);
  const auto putU32 = [&out](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  };
  putU32(static_cast<std::uint32_t>(total));
  // CRC over the full payload (type tag included), matching the journal.
  const char typeBytes[2] = {static_cast<char>(type & 0xFF), static_cast<char>((type >> 8) & 0xFF)};
  std::uint32_t crc = crc32(typeBytes, 2, 0);
  crc = crc32(payload.data(), payload.size(), crc);
  putU32(crc);
  out.append(typeBytes, 2);
  out.append(payload);
  return out;
}

std::optional<Frame> decodeFrame(std::string_view bytes, std::size_t* consumed) {
  if (bytes.size() < kFrameHeaderBytes) return std::nullopt;
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  const std::uint32_t len = getU32(p);
  const std::uint32_t crcStored = getU32(p + 4);
  if (len < 2 || len > kMaxFramePayload) {
    throw FrameFormatError("frame payload length " + std::to_string(len) +
                           " out of range [2, " + std::to_string(kMaxFramePayload) + "]");
  }
  if (bytes.size() - kFrameHeaderBytes < len) return std::nullopt;
  const char* payload = bytes.data() + kFrameHeaderBytes;
  const std::uint32_t crcActual = crc32(payload, len, 0);
  if (crcActual != crcStored) {
    throw FrameCorruptError("frame CRC mismatch (stored " + std::to_string(crcStored) +
                            ", computed " + std::to_string(crcActual) + ")");
  }
  Frame frame;
  frame.type = static_cast<std::uint16_t>(static_cast<unsigned char>(payload[0]) |
                                          (static_cast<unsigned char>(payload[1]) << 8));
  frame.payload.assign(payload + 2, len - 2);
  if (consumed) *consumed = kFrameHeaderBytes + len;
  return frame;
}

Frame readFrame(int fd, std::chrono::milliseconds timeout) {
  const auto deadline = deadlineFrom(timeout);
  char header[kFrameHeaderBytes];
  if (!readExact(fd, header, sizeof header, deadline)) {
    throw PeerClosedError("peer closed connection");
  }
  const auto* p = reinterpret_cast<const unsigned char*>(header);
  const std::uint32_t len = getU32(p);
  const std::uint32_t crcStored = getU32(p + 4);
  // Validate the length BEFORE allocating: a hostile prefix must cost nothing.
  if (len < 2 || len > kMaxFramePayload) {
    throw FrameFormatError("frame payload length " + std::to_string(len) +
                           " out of range [2, " + std::to_string(kMaxFramePayload) + "]");
  }
  std::string payload(len, '\0');
  if (!readExact(fd, payload.data(), len, deadline)) {
    throw FrameFormatError("peer closed between frame header and payload");
  }
  const std::uint32_t crcActual = crc32(payload.data(), payload.size(), 0);
  if (crcActual != crcStored) {
    throw FrameCorruptError("frame CRC mismatch (stored " + std::to_string(crcStored) +
                            ", computed " + std::to_string(crcActual) + ")");
  }
  Frame frame;
  frame.type = static_cast<std::uint16_t>(static_cast<unsigned char>(payload[0]) |
                                          (static_cast<unsigned char>(payload[1]) << 8));
  frame.payload.assign(payload, 2, std::string::npos);
  return frame;
}

void writeFrame(int fd, std::uint16_t type, std::string_view payload,
                std::chrono::milliseconds timeout) {
  const std::string encoded = encodeFrame(type, payload);
  writeAll(fd, encoded.data(), encoded.size(), deadlineFrom(timeout));
}

}  // namespace scandiag::serve
