#include "serve/protocol.hpp"

#include "serve/wire.hpp"

namespace scandiag::serve {

namespace {

/// Caps on string fields, enforced on decode before allocation. Gate names
/// are tens of bytes; tester logs grow with session count but half the frame
/// cap leaves room for the rest of the message around a worst-case log.
constexpr std::size_t kMaxGateName = 1024;
constexpr std::size_t kMaxLogText = kMaxFramePayload / 2;
constexpr std::size_t kMaxMessage = 4096;
constexpr std::size_t kMaxDefectSpec = 256;

}  // namespace

const char* replyStatusName(ReplyStatus status) {
  switch (status) {
    case ReplyStatus::Ok: return "ok";
    case ReplyStatus::Busy: return "busy";
    case ReplyStatus::Deadline: return "deadline";
    case ReplyStatus::Error: return "error";
  }
  return "unknown";
}

std::string encodeDiagnoseRequest(const DiagnoseRequest& request) {
  std::string out;
  wire::putU16(out, static_cast<std::uint16_t>(request.kind));
  wire::putString(out, request.gateName);
  wire::putU16(out, request.stuckAt1 ? 1 : 0);
  wire::putString(out, request.logText);
  if (request.kind == DiagnoseRequest::Kind::DefectScenario) {
    wire::putString(out, request.defectSpec);
    wire::putU64(out, request.defectSeed);
    wire::putU32(out, request.defectIndex);
  }
  return out;
}

DiagnoseRequest decodeDiagnoseRequest(const std::string& payload) {
  wire::Cursor cur(payload);
  DiagnoseRequest request;
  const std::uint16_t kind = cur.u16();
  if (kind > static_cast<std::uint16_t>(DiagnoseRequest::Kind::DefectScenario)) {
    throw FrameFormatError("diagnose request: unknown kind " + std::to_string(kind));
  }
  request.kind = static_cast<DiagnoseRequest::Kind>(kind);
  request.gateName = cur.str(kMaxGateName);
  request.stuckAt1 = cur.u16() != 0;
  request.logText = cur.str(kMaxLogText);
  if (request.kind == DiagnoseRequest::Kind::DefectScenario) {
    request.defectSpec = cur.str(kMaxDefectSpec);
    request.defectSeed = cur.u64();
    request.defectIndex = cur.u32();
  }
  cur.expectExhausted("diagnose request");
  return request;
}

std::string encodeDiagnoseReply(const DiagnoseReply& reply) {
  std::string out;
  wire::putU16(out, static_cast<std::uint16_t>(reply.status));
  wire::putU64(out, reply.requestId);
  wire::putU16(out, reply.detected ? 1 : 0);
  wire::putU16(out, reply.resolved ? 1 : 0);
  wire::putDouble(out, reply.confidence);
  wire::putU32(out, reply.partitionsUsed);
  wire::putU32(out, reply.partitionsTotal);
  wire::putString(out, reply.message);
  wire::putU32(out, static_cast<std::uint32_t>(reply.candidateCells.size()));
  for (std::uint32_t cell : reply.candidateCells) wire::putU32(out, cell);
  return out;
}

DiagnoseReply decodeDiagnoseReply(const std::string& payload) {
  wire::Cursor cur(payload);
  DiagnoseReply reply;
  const std::uint16_t status = cur.u16();
  if (status > static_cast<std::uint16_t>(ReplyStatus::Error)) {
    throw FrameFormatError("diagnose reply: unknown status " + std::to_string(status));
  }
  reply.status = static_cast<ReplyStatus>(status);
  reply.requestId = cur.u64();
  reply.detected = cur.u16() != 0;
  reply.resolved = cur.u16() != 0;
  reply.confidence = cur.f64();
  reply.partitionsUsed = cur.u32();
  reply.partitionsTotal = cur.u32();
  reply.message = cur.str(kMaxMessage);
  const std::uint32_t count = cur.u32();
  // Each cell is 4 bytes; a count that promises more cells than the payload
  // has bytes left is a lie — reject before reserving.
  if (count > cur.remaining() / 4) {
    throw FrameFormatError("diagnose reply: candidate count " + std::to_string(count) +
                           " overruns payload (" + std::to_string(cur.remaining()) +
                           " bytes left)");
  }
  reply.candidateCells.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) reply.candidateCells.push_back(cur.u32());
  cur.expectExhausted("diagnose reply");
  return reply;
}

std::string encodeStatsReply(const StatsReply& stats) {
  std::string out;
  wire::putU64(out, stats.accepted);
  wire::putU64(out, stats.ok);
  wire::putU64(out, stats.shed);
  wire::putU64(out, stats.degraded);
  wire::putU64(out, stats.aborted);
  wire::putU64(out, stats.framesRejected);
  return out;
}

StatsReply decodeStatsReply(const std::string& payload) {
  wire::Cursor cur(payload);
  StatsReply stats;
  stats.accepted = cur.u64();
  stats.ok = cur.u64();
  stats.shed = cur.u64();
  stats.degraded = cur.u64();
  stats.aborted = cur.u64();
  stats.framesRejected = cur.u64();
  cur.expectExhausted("stats reply");
  return stats;
}

}  // namespace scandiag::serve
