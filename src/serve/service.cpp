#include "serve/service.hpp"

#include "common/errors.hpp"
#include "bist/prpg.hpp"
#include "diagnosis/tester_log.hpp"
#include "inject/defect_zoo.hpp"

namespace scandiag::serve {

namespace {

ScanTopology topologyFor(const Netlist& netlist, std::size_t numChains) {
  return numChains <= 1 ? ScanTopology::singleChain(netlist.dffs().size())
                        : ScanTopology::blockChains(netlist.dffs().size(), numChains);
}

DiagnoseReply errorReply(DiagnoseReply reply, std::string message) {
  reply.status = ReplyStatus::Error;
  reply.resolved = false;
  reply.confidence = 0.0;
  reply.message = std::move(message);
  return reply;
}

}  // namespace

DiagnosisService::DiagnosisService(Netlist netlist, const ServiceConfig& config)
    : netlist_(std::move(netlist)),
      config_(config),
      topology_(topologyFor(netlist_, config.numChains)),
      patterns_(generatePatterns(netlist_, config.diagnosis.numPatterns, PrpgConfig{})),
      pipeline_(topology_, config.diagnosis),
      recovery_(topology_, RetryPolicy{}) {
  const std::size_t count = config_.simulators == 0 ? 1 : config_.simulators;
  simulators_.reserve(count);
  freeSimulators_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    simulators_.push_back(std::make_unique<FaultSimulator>(netlist_, patterns_));
    freeSimulators_.push_back(i);
  }
}

DiagnosisService::SimulatorLease::SimulatorLease(const DiagnosisService& service)
    : service_(&service) {
  std::unique_lock<std::mutex> lock(service.simMutex_);
  service.simAvailable_.wait(lock, [&] { return !service.freeSimulators_.empty(); });
  index_ = service.freeSimulators_.back();
  service.freeSimulators_.pop_back();
}

DiagnosisService::SimulatorLease::~SimulatorLease() {
  {
    std::lock_guard<std::mutex> lock(service_->simMutex_);
    service_->freeSimulators_.push_back(index_);
  }
  service_->simAvailable_.notify_one();
}

DiagnoseReply DiagnosisService::handle(const DiagnoseRequest& request, std::uint64_t requestId,
                                       std::chrono::milliseconds deadline,
                                       CancellationToken* cancel) const {
  DiagnoseReply reply;
  reply.requestId = requestId;
  reply.partitionsTotal = static_cast<std::uint32_t>(pipeline_.partitions().size());

  // Per-request deadline: a private token so one request's trip never
  // touches another's, wrapped in a watchdog the partition loop polls.
  CancellationToken deadlineToken;
  std::unique_ptr<Watchdog> watchdog;
  if (deadline.count() > 0) watchdog = std::make_unique<Watchdog>(deadlineToken, deadline);
  RunControl control{cancel, watchdog.get()};

  switch (request.kind) {
    case DiagnoseRequest::Kind::InjectFault:
      return handleInject(request, std::move(reply), control, watchdog.get());
    case DiagnoseRequest::Kind::TesterLog:
      return handleLog(request, std::move(reply), control, watchdog.get());
    case DiagnoseRequest::Kind::DefectScenario:
      return handleDefect(request, std::move(reply), control, watchdog.get());
  }
  return errorReply(std::move(reply), "unknown request kind");
}

DiagnoseReply DiagnosisService::handleInject(const DiagnoseRequest& request, DiagnoseReply reply,
                                             const RunControl& control,
                                             const Watchdog* deadline) const {
  const GateId site = netlist_.findByName(request.gateName);
  if (site == kInvalidGate) {
    return errorReply(std::move(reply), "no gate named '" + request.gateName + "'");
  }
  const FaultSite fault{site, FaultSite::kOutputPin, request.stuckAt1};

  FaultResponse response;
  {
    SimulatorLease sim(*this);
    response = (*sim).simulate(fault);
  }
  if (!response.detected()) {
    reply.status = ReplyStatus::Ok;
    reply.detected = false;
    return reply;
  }
  reply.detected = true;
  return diagnoseResponse(response, std::move(reply), control, deadline);
}

DiagnoseReply DiagnosisService::handleDefect(const DiagnoseRequest& request, DiagnoseReply reply,
                                             const RunControl& control,
                                             const Watchdog* deadline) const {
  DefectMix mix;
  try {
    mix = parseDefectSpec(request.defectSpec);
  } catch (const std::invalid_argument& e) {
    return errorReply(std::move(reply), e.what());
  }
  if (request.defectSeed != 0) mix.seed = request.defectSeed;

  FaultResponse response;
  {
    // Scenario generation fault-simulates every component, so it runs under
    // a lease like InjectFault's single simulate(). Pool construction per
    // request is fine at serve scale (one collapsed enumeration + samples).
    SimulatorLease sim(*this);
    const DefectScenarioGenerator generator(*sim, mix);
    const DefectScenario scenario = generator.generate(request.defectIndex);
    response = scenario.composed;
  }
  if (!response.detected()) {
    reply.status = ReplyStatus::Ok;
    reply.detected = false;
    return reply;
  }
  reply.detected = true;
  return diagnoseResponse(response, std::move(reply), control, deadline);
}

DiagnoseReply DiagnosisService::handleLog(const DiagnoseRequest& request, DiagnoseReply reply,
                                          const RunControl& control,
                                          const Watchdog* deadline) const {
  (void)control;
  (void)deadline;  // log diagnosis runs no sessions; recovery is sub-ms
  TesterLog log;
  try {
    log = parseTesterLogString(request.logText);
  } catch (const ParseError& e) {
    return errorReply(std::move(reply), std::string("tester log: ") + e.what());
  }
  // The server's partition schedule is burned in at startup (it mirrors the
  // BIST controller); a log recorded against a different schedule would be
  // silently mis-intersected, so dimension mismatch is a hard request error.
  if (log.numPartitions != config_.diagnosis.numPartitions ||
      log.groupsPerPartition != config_.diagnosis.groupsPerPartition) {
    return errorReply(std::move(reply),
                      "tester log schedule " + std::to_string(log.numPartitions) + "x" +
                          std::to_string(log.groupsPerPartition) + " does not match server " +
                          std::to_string(config_.diagnosis.numPartitions) + "x" +
                          std::to_string(config_.diagnosis.groupsPerPartition));
  }
  reply.detected = true;
  // A recorded log cannot be re-run: recovery with a null rerun callback
  // degrades inconsistent partitions instead of retrying them (the same
  // policy as `scandiag offline`).
  const RecoveredDiagnosis recovered =
      recovery_.recover(pipeline_.partitions(), log.verdicts, nullptr);
  return finishReply(std::move(reply), recovered, pipeline_.partitions().size(),
                     /*deadlineHit=*/false);
}

DiagnoseReply DiagnosisService::diagnoseResponse(const FaultResponse& response,
                                                 DiagnoseReply reply, const RunControl& control,
                                                 const Watchdog* deadline) const {
  const std::vector<Partition>& partitions = pipeline_.partitions();
  const PreparedPartitionSet& prepared = pipeline_.prepared();

  GroupVerdicts verdicts;
  verdicts.failing.reserve(partitions.size());
  std::size_t used = 0;
  bool deadlineHit = false;
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    if (control.shouldStop()) {
      if (deadline != nullptr && deadline->tripped()) {
        deadlineHit = true;
        break;
      }
      // Not the deadline: the server is draining (or a test cancelled us).
      // A partial answer the server chose to abandon has no client value —
      // unwind; the server books ABORTED and closes the connection.
      control.throwIfStopped();
    }
    PartitionVerdictRow row = pipeline_.engine().runPartition(prepared, p, response);
    verdicts.failing.push_back(std::move(row.failing));
    ++used;
  }

  if (used == 0) {
    // Deadline expired before any partition ran: the only sound superset is
    // every cell. Still a valid (if useless) degraded answer.
    reply.status = ReplyStatus::Deadline;
    reply.resolved = false;
    reply.confidence = 0.0;
    reply.partitionsUsed = 0;
    reply.candidateCells.reserve(topology_.numCells());
    for (std::size_t c = 0; c < topology_.numCells(); ++c) {
      reply.candidateCells.push_back(static_cast<std::uint32_t>(c));
    }
    return reply;
  }

  const std::vector<Partition> prefix(partitions.begin(),
                                      partitions.begin() + static_cast<std::ptrdiff_t>(used));
  const RecoveredDiagnosis recovered = recovery_.recover(prefix, verdicts, nullptr);
  return finishReply(std::move(reply), recovered, used, deadlineHit);
}

DiagnoseReply DiagnosisService::finishReply(DiagnoseReply reply,
                                            const RecoveredDiagnosis& recovered,
                                            std::size_t partitionsUsed, bool deadlineHit) const {
  reply.status = deadlineHit ? ReplyStatus::Deadline : ReplyStatus::Ok;
  reply.resolved = recovered.resolved && !deadlineHit;
  reply.partitionsUsed =
      static_cast<std::uint32_t>(partitionsUsed - recovered.droppedPartitions.size());
  // recovered.confidence already decays for repairs/drops within the
  // partitions that ran; scale again by the fraction of the schedule that
  // ran at all, so a 2-of-8-partition deadline answer self-reports as weak.
  const double fraction = reply.partitionsTotal == 0
                              ? 1.0
                              : static_cast<double>(partitionsUsed) / reply.partitionsTotal;
  reply.confidence = recovered.confidence * fraction;
  const std::vector<std::size_t> cells = recovered.candidates.cells.toIndices();
  reply.candidateCells.reserve(cells.size());
  for (std::size_t c : cells) reply.candidateCells.push_back(static_cast<std::uint32_t>(c));
  return reply;
}

}  // namespace scandiag::serve
