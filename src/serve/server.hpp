// DiagnosisServer: the hardened request lifecycle around DiagnosisService.
//
// Request state machine (docs/ARCHITECTURE.md §12):
//
//       accept ──▸ [admission]  queue full ──▸ SHED (BUSY reply, close)
//                      │
//                      ▼
//                  [queued] ──▸ handler reads frames
//                      │
//                      ▼
//                  [running]  deadline trip ─▸ DEGRADED (DEADLINE reply)
//                      │       drain/IO fail ─▸ ABORTED  (close)
//                      ▼
//                    OK
//
// Robustness invariants, each driven on purpose by the chaos suite:
//  * Bounded memory: at most queueCapacity connections wait + handlers run;
//    connection #capacity+1 gets an immediate BUSY reply and a close —
//    never an unbounded queue.
//  * Bounded time: every read/write carries the I/O timeout (slowloris gets
//    one handler for at most that long), every request optionally carries
//    the request deadline (degrading, not killing, the answer).
//  * Crash-exact accounting: ACCEPTED is journaled (fsync'd) before a
//    request runs, its terminal state after; replayLedger() after a SIGKILL
//    balances accepted == ok + shed + degraded + aborted exactly.
//  * Two-stage drain: the first SIGINT/SIGTERM (or stop()) closes the
//    listener, severs idle connections, lets in-flight requests finish
//    inside the drain budget, flushes the metrics snapshot atomically, and
//    returns exit code 6. Requests still running past the budget are
//    cancelled and booked ABORTED. A second signal hard-exits 6 immediately
//    (the watchdog layer's handler).
//
// Compute runs on the existing global ThreadPool (handlers submit and wait),
// so `--threads` bounds diagnosis parallelism exactly as it does for sweeps;
// handler threads only do framing I/O and bookkeeping.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/watchdog.hpp"
#include "serve/accounting.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace scandiag::serve {

/// The server cannot start or continue (bind/listen failure, unusable
/// journal). The CLI maps this to exit code 7.
class ServerFatalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ServeOptions {
  std::string socketPath;
  /// Connections allowed to wait for a handler; one more is shed BUSY.
  std::size_t queueCapacity = 16;
  /// Handler threads (framing I/O + bookkeeping; compute goes to the pool).
  std::size_t handlers = 2;
  /// Per-request deadline in ms; 0 = none. Exceeding it degrades the reply.
  std::size_t requestDeadlineMs = 0;
  /// Whole-frame read/write deadline per I/O op (slowloris/idle bound).
  std::size_t ioTimeoutMs = 5000;
  /// Stage-one drain: in-flight requests get this long to finish.
  std::size_t drainBudgetMs = 5000;
  std::string journalPath;  // request-accounting ledger ("" = off)
  std::string metricsPath;  // metrics snapshot at drain ("" = off)
  std::string metricsCircuit;  // context string for the snapshot
  /// Token whose cancellation starts the drain. Null = a private token only
  /// stop() reaches; the CLI passes &globalCancelToken() so signals drain.
  CancellationToken* stopToken = nullptr;
};

/// Live (in-memory) request totals; mirrors what the ledger journal replays
/// to, minus anything from prior incarnations.
struct ServeStats {
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> degraded{0};
  std::atomic<std::uint64_t> aborted{0};
  std::atomic<std::uint64_t> framesRejected{0};

  StatsReply snapshot() const {
    StatsReply reply;
    reply.accepted = accepted.load(std::memory_order_relaxed);
    reply.ok = ok.load(std::memory_order_relaxed);
    reply.shed = shed.load(std::memory_order_relaxed);
    reply.degraded = degraded.load(std::memory_order_relaxed);
    reply.aborted = aborted.load(std::memory_order_relaxed);
    reply.framesRejected = framesRejected.load(std::memory_order_relaxed);
    return reply;
  }
};

class DiagnosisServer {
 public:
  DiagnosisServer(const DiagnosisService& service, ServeOptions options);
  ~DiagnosisServer();

  DiagnosisServer(const DiagnosisServer&) = delete;
  DiagnosisServer& operator=(const DiagnosisServer&) = delete;

  /// Binds, listens, serves until the stop token trips, then drains.
  /// Returns the process exit code (6 = drained after stop/signal).
  /// Throws ServerFatalError when the socket or journal cannot be set up.
  int run();

  /// Starts the drain from any thread (tests; the CLI uses signals).
  void stop();

  /// Blocks until run() is accepting connections (or `timeoutMs` passed).
  /// False on timeout or when run() already exited.
  bool waitUntilListening(std::size_t timeoutMs);

  const ServeStats& stats() const { return stats_; }

 private:
  /// One accepted connection; busy is true while a request is mid-service
  /// (drain severs only idle connections, so replies in flight still land).
  struct Connection {
    int fd = -1;
    std::atomic<bool> busy{false};
  };

  void handlerLoop();
  void serveConnection(Connection& conn);
  /// Returns false when the connection must close (protocol garbage, abort).
  bool dispatchFrame(Connection& conn, const Frame& frame);
  void shedConnection(int fd);
  void bookTerminal(std::uint64_t requestId, RequestOutcome outcome);
  std::uint64_t nextRequestId() { return requestIds_.fetch_add(1, std::memory_order_relaxed); }

  const DiagnosisService* service_;
  ServeOptions options_;
  std::unique_ptr<RequestAccounting> accounting_;
  ServeStats stats_;
  std::atomic<std::uint64_t> requestIds_{1};

  CancellationToken privateStop_;
  CancellationToken* stopToken_ = nullptr;
  /// Stage-two token: trips when the drain budget runs out; per-request
  /// RunControls watch it, so overrunning requests unwind as ABORTED.
  CancellationToken abortToken_;
  std::atomic<bool> draining_{false};

  std::mutex queueMutex_;
  std::condition_variable queueCv_;
  std::deque<int> pendingFds_;

  std::mutex connMutex_;
  std::vector<std::shared_ptr<Connection>> activeConns_;

  std::mutex listenMutex_;
  std::condition_variable listenCv_;
  bool listening_ = false;
  bool finished_ = false;
};

}  // namespace scandiag::serve
