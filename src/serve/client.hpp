// scandiag_client: the polite side of the serve protocol.
//
// A fleet front-end sheds load on purpose (BUSY replies, refused connects
// during restart windows); a client that hammers back immediately turns a
// momentary overload into a synchronized stampede. This client retries both
// failure classes — connect refusal and BUSY — with capped exponential
// backoff plus seeded jitter (Xoroshiro128, so tests are reproducible), and
// gives up with a typed error once the attempt budget is spent.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "serve/protocol.hpp"

namespace scandiag::serve {

/// The request could not be served within the retry budget (connect kept
/// failing, server kept shedding, or the socket I/O failed).
class ClientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ClientOptions {
  std::string socketPath;
  /// Attempts total (first try + retries). 1 = no retrying.
  std::size_t maxAttempts = 5;
  /// Backoff before attempt k (1-based retries): base * 2^(k-1), capped,
  /// then jittered to a uniform draw over [delay/2, delay].
  std::size_t backoffBaseMs = 20;
  std::size_t backoffCapMs = 2000;
  std::uint64_t jitterSeed = 0xC11E57;
  /// Whole-frame I/O deadline per read/write.
  std::size_t ioTimeoutMs = 5000;
};

/// Connects, sends one diagnosis request, reads the reply. Retries connect
/// failures, BUSY replies, and dropped connections (server draining) with
/// backoff; returns the first terminal reply (Ok/Deadline/Error). Throws
/// ClientError when every attempt was shed or failed.
DiagnoseReply requestDiagnosis(const ClientOptions& options, const DiagnoseRequest& request);

/// Round-trips a ping frame (no retry — a liveness probe should not lie
/// about latency). Throws ClientError / FrameError subtypes on failure.
void ping(const ClientOptions& options);

/// Fetches the server's live request totals (with the same retry policy as
/// requestDiagnosis for connect failures).
StatsReply fetchStats(const ClientOptions& options);

}  // namespace scandiag::serve
