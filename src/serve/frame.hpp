// CRC-framed socket protocol: the journal's framing discipline over a fd.
//
// A serve frame is byte-identical in shape to a journal frame:
//
//     [u32 payloadLen][u32 crc32(payload)][payload]   little-endian,
//     payload = [u16 messageType][message bytes]
//
// so the protocol inherits the journal's property that a length-lying,
// bit-flipped, or truncated frame is *detected*, never silently accepted.
// What differs is the trust model: a journal's writer is this same program,
// while a socket peer is arbitrary — possibly buggy, slow, or hostile. The
// frame layer therefore enforces, before any allocation or blocking read:
//
//  * a payload cap (kMaxFramePayload, far below the journal's 16 MiB — a
//    diagnosis request is small; a 1 GiB length prefix is an attack, and the
//    reply must be a typed FrameFormatError, not a bad_alloc),
//  * poll(2) deadlines on every read/write so a slowloris peer (drip-feeding
//    one byte per second) costs one handler a bounded amount of time and
//    surfaces as FrameTimeoutError,
//  * typed errors for each failure class, so the server can count
//    serve_frames_rejected for protocol garbage while treating peer
//    disconnects (PeerClosedError) as the non-event they are.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace scandiag::serve {

/// Any frame-layer failure; catch subtypes to distinguish causes.
class FrameError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Structurally malformed: length prefix out of range, message truncated
/// relative to its own length fields, unknown layout. The peer spoke the
/// wrong protocol (or a fuzzer spoke on purpose).
class FrameFormatError : public FrameError {
 public:
  using FrameError::FrameError;
};

/// Frame bytes fully present but the CRC does not match — corruption in
/// flight or a forged frame.
class FrameCorruptError : public FrameError {
 public:
  using FrameError::FrameError;
};

/// The peer went quiet past the I/O deadline (slowloris, dead client).
class FrameTimeoutError : public FrameError {
 public:
  using FrameError::FrameError;
};

/// read/write/poll failed at the OS level (EPIPE, ECONNRESET, ...).
class FrameIoError : public FrameError {
 public:
  using FrameError::FrameError;
};

/// Clean EOF on a frame boundary — the peer hung up. Not protocol garbage;
/// typed separately so servers don't count it as a rejected frame.
class PeerClosedError : public FrameError {
 public:
  using FrameError::FrameError;
};

/// Hard cap on one frame's payload (type tag + message). Diagnosis requests
/// and replies are a few KiB; 1 MiB leaves generous headroom for tester-log
/// payloads while keeping a hostile length prefix harmless.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

/// Bytes of framing overhead preceding each payload (u32 len + u32 crc).
inline constexpr std::size_t kFrameHeaderBytes = 8;

struct Frame {
  std::uint16_t type = 0;
  std::string payload;  // message bytes after the type tag, CRC-verified
};

/// Encodes one frame: header + [u16 type][payload]. Throws FrameFormatError
/// if payload would exceed kMaxFramePayload (callers should never hit this;
/// it guards against a bug assembling an oversized reply).
std::string encodeFrame(std::uint16_t type, std::string_view payload);

/// Decodes the first complete frame from `bytes`.
///
/// Returns nullopt when `bytes` is a valid *prefix* of a frame (caller needs
/// more data — this is how the socket reader distinguishes "short read" from
/// "garbage"). Sets `consumed` to the bytes used when a frame is returned.
/// Throws FrameFormatError / FrameCorruptError on malformed or rotted bytes.
/// This is the pure, fd-free core — the fuzz harness targets it directly.
std::optional<Frame> decodeFrame(std::string_view bytes, std::size_t* consumed);

/// Reads one frame from `fd`, enforcing `timeout` as a deadline on the WHOLE
/// frame (not per byte — a slowloris peer cannot reset the clock by dripping).
/// Throws PeerClosedError on clean EOF at a frame boundary, FrameFormatError
/// on EOF mid-frame or malformed bytes, FrameCorruptError on CRC mismatch,
/// FrameTimeoutError past the deadline, FrameIoError on OS-level failure.
Frame readFrame(int fd, std::chrono::milliseconds timeout);

/// Writes one encoded frame to `fd` under the same whole-frame deadline.
/// Throws FrameTimeoutError / FrameIoError.
void writeFrame(int fd, std::uint16_t type, std::string_view payload,
                std::chrono::milliseconds timeout);

}  // namespace scandiag::serve
