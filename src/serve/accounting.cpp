#include "serve/accounting.hpp"

#include <sys/stat.h>

#include <unordered_map>

#include "serve/wire.hpp"

namespace scandiag::serve {

namespace {

// Journal record types (the journal reserves 0 for its own header).
constexpr std::uint16_t kAcceptedRecord = 1;
constexpr std::uint16_t kOkRecord = 2;
constexpr std::uint16_t kShedRecord = 3;
constexpr std::uint16_t kDegradedRecord = 4;
constexpr std::uint16_t kAbortedRecord = 5;

constexpr const char* kSetupInfo = "scandiag serve request ledger v1";

std::uint64_t ledgerDigest() { return fnv1a64(std::string(kSetupInfo)); }

std::uint16_t recordTypeFor(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::Ok: return kOkRecord;
    case RequestOutcome::Shed: return kShedRecord;
    case RequestOutcome::Degraded: return kDegradedRecord;
    case RequestOutcome::Aborted: return kAbortedRecord;
  }
  return kAbortedRecord;
}

bool fileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::string encodeId(std::uint64_t requestId) {
  std::string payload;
  wire::putU64(payload, requestId);
  return payload;
}

std::uint64_t decodeId(const JournalRecord& record) {
  if (record.payload.size() != 8) {
    throw JournalFormatError("ledger record type " + std::to_string(record.type) +
                             " has payload of " + std::to_string(record.payload.size()) +
                             " bytes (want 8)");
  }
  wire::Cursor cur(record.payload);
  return cur.u64();
}

}  // namespace

const char* requestOutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::Ok: return "ok";
    case RequestOutcome::Shed: return "shed";
    case RequestOutcome::Degraded: return "degraded";
    case RequestOutcome::Aborted: return "aborted";
  }
  return "unknown";
}

RequestAccounting::RequestAccounting(const std::string& path) {
  if (fileExists(path)) {
    JournalContents contents;
    writer_ = std::make_unique<JournalWriter>(
        JournalWriter::openForAppend(path, ledgerDigest(), &contents));
    for (const JournalRecord& record : contents.records) {
      const std::uint64_t id = decodeId(record);
      if (id >= nextRequestId_) nextRequestId_ = id + 1;
    }
  } else {
    writer_ = std::make_unique<JournalWriter>(
        JournalWriter::create(path, ledgerDigest(), kSetupInfo));
  }
}

void RequestAccounting::accepted(std::uint64_t requestId) {
  writer_->append(kAcceptedRecord, encodeId(requestId));
}

void RequestAccounting::terminal(std::uint64_t requestId, RequestOutcome outcome) {
  writer_->append(recordTypeFor(outcome), encodeId(requestId));
}

ServeLedger replayLedger(const std::string& path) {
  const JournalContents contents = readJournal(path);
  if (contents.setupDigest != ledgerDigest()) {
    throw JournalDigestMismatchError("journal " + path + " is not a serve request ledger (" +
                                     contents.setupInfo + ")");
  }
  ServeLedger ledger;
  ledger.truncatedTail = contents.truncatedTail;
  // id -> terminal recorded? ACCEPTED inserts false; a terminal flips to
  // true. Survivors at the end were in flight when the process died.
  std::unordered_map<std::uint64_t, bool> open;
  open.reserve(contents.records.size());
  for (const JournalRecord& record : contents.records) {
    const std::uint64_t id = decodeId(record);
    switch (record.type) {
      case kAcceptedRecord:
        ++ledger.accepted;
        open.emplace(id, false);
        break;
      case kOkRecord:
      case kShedRecord:
      case kDegradedRecord:
      case kAbortedRecord: {
        const auto it = open.find(id);
        if (it == open.end() || it->second) {
          throw JournalFormatError("ledger: terminal record for request " + std::to_string(id) +
                                   " without a matching open ACCEPTED");
        }
        it->second = true;
        if (record.type == kOkRecord) ++ledger.ok;
        else if (record.type == kShedRecord) ++ledger.shed;
        else if (record.type == kDegradedRecord) ++ledger.degraded;
        else ++ledger.aborted;
        break;
      }
      default:
        throw JournalFormatError("ledger: unknown record type " + std::to_string(record.type));
    }
  }
  for (const auto& [id, closed] : open) {
    if (!closed) {
      ++ledger.aborted;
      ++ledger.abortedInFlight;
    }
  }
  return ledger;
}

}  // namespace scandiag::serve
