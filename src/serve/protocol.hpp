// Serve protocol messages: the typed requests/replies carried inside frames.
//
// One frame carries one message; the frame's u16 type tag selects the layout.
// Decoders go through wire::Cursor, so every length field is validated before
// allocation and every message must consume its payload exactly — a frame
// that passed its CRC can still be rejected here (FrameFormatError) when its
// *content* lies about itself.
//
// The reply status encodes the request lifecycle's terminal states (see
// docs/ARCHITECTURE.md §12):
//   Ok        full diagnosis, every partition evaluated
//   Busy      shed at admission — no diagnosis ran; retry with backoff
//   Deadline  per-request deadline hit — candidates are the superset from the
//             partitions that did run, confidence scaled accordingly
//   Error     request-level failure (unknown gate, unparsable log, config
//             mismatch); message says why
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/frame.hpp"

namespace scandiag::serve {

// Frame type tags. u16, like journal record types.
inline constexpr std::uint16_t kPingRequestFrame = 0x10;
inline constexpr std::uint16_t kPingReplyFrame = 0x11;
inline constexpr std::uint16_t kDiagnoseRequestFrame = 0x20;
inline constexpr std::uint16_t kDiagnoseReplyFrame = 0x21;
inline constexpr std::uint16_t kStatsRequestFrame = 0x30;
inline constexpr std::uint16_t kStatsReplyFrame = 0x31;

struct DiagnoseRequest {
  enum class Kind : std::uint16_t {
    /// Diagnose an injected stuck-at fault named by its gate (simulation-
    /// backed; the service fault-simulates it, then diagnoses the response).
    InjectFault = 0,
    /// Diagnose a recorded tester session log (text in the tester_log format;
    /// the hardware already ran the sessions).
    TesterLog = 1,
    /// Diagnose a deterministic defect-zoo scenario: k simultaneous defects
    /// drawn per `defectSpec`/`defectSeed`/`defectIndex` (simulation-backed;
    /// the service regenerates the exact scenario and diagnoses its permanent
    /// union overlay). The extra fields ride after the common ones on the
    /// wire, present only for this kind.
    DefectScenario = 2,
  };

  Kind kind = Kind::InjectFault;
  std::string gateName;  // InjectFault: gate to fault
  bool stuckAt1 = true;  // InjectFault: SA1 vs SA0
  std::string logText;   // TesterLog: full log text
  // DefectScenario only:
  std::string defectSpec;        // "k[,bridge][,open][,intermittent:p]"
  std::uint64_t defectSeed = 0;  // 0 = the spec/mix default
  std::uint32_t defectIndex = 0; // scenario index under the seed
};

enum class ReplyStatus : std::uint16_t {
  Ok = 0,
  Busy = 1,
  Deadline = 2,
  Error = 3,
};

const char* replyStatusName(ReplyStatus status);

struct DiagnoseReply {
  ReplyStatus status = ReplyStatus::Error;
  std::uint64_t requestId = 0;  // server-assigned, echoed for client logs
  bool detected = false;        // InjectFault: fault visible under the patterns
  /// False when graceful degradation widened the candidates (deadline hit,
  /// inconsistent log partitions dropped) — same meaning as the CLI's exit 5.
  bool resolved = true;
  double confidence = 1.0;
  std::uint32_t partitionsUsed = 0;
  std::uint32_t partitionsTotal = 0;
  std::vector<std::uint32_t> candidateCells;
  std::string message;  // Error/Busy detail, empty otherwise
};

/// Served/shed totals as the server sees them right now (the journal replay
/// is the authoritative post-crash view; this is the live view).
struct StatsReply {
  std::uint64_t accepted = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t degraded = 0;
  std::uint64_t aborted = 0;
  std::uint64_t framesRejected = 0;
};

std::string encodeDiagnoseRequest(const DiagnoseRequest& request);
DiagnoseRequest decodeDiagnoseRequest(const std::string& payload);

std::string encodeDiagnoseReply(const DiagnoseReply& reply);
DiagnoseReply decodeDiagnoseReply(const std::string& payload);

std::string encodeStatsReply(const StatsReply& stats);
StatsReply decodeStatsReply(const std::string& payload);

}  // namespace scandiag::serve
