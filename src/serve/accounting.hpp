// Crash-safe request accounting: every request's lifecycle journaled so a
// SIGKILLed server replays to an exact ledger.
//
// Built directly on common/journal (CRC-framed, fsync'd appends, torn tails
// truncated on reopen). Two record shapes, both carrying the server-assigned
// request id:
//
//   ACCEPTED <id>                    appended the moment a request enters
//                                    accounting (admitted to a handler, or
//                                    about to be shed at admission)
//   OK/SHED/DEGRADED/ABORTED <id>    appended when the request reaches its
//                                    terminal state
//
// The ledger invariant — accepted == ok + shed + degraded + aborted — holds
// by construction at replay: an ACCEPTED with no terminal record means the
// process died mid-request, and replay books it as aborted (that is exactly
// what happened to the client). The chaos CI job asserts the sum after a
// SIGKILL + restart.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/journal.hpp"

namespace scandiag::serve {

enum class RequestOutcome : std::uint16_t {
  Ok = 0,        // full diagnosis replied
  Shed = 1,      // BUSY at admission, no diagnosis ran
  Degraded = 2,  // deadline hit, partial superset replied
  Aborted = 3,   // failed/cancelled before a successful reply (frame garbage,
                 // I/O error, request-level error, drain cancellation, crash)
};

const char* requestOutcomeName(RequestOutcome outcome);

/// What a journal replays to (or what a live server reports via stats).
struct ServeLedger {
  std::uint64_t accepted = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t degraded = 0;
  std::uint64_t aborted = 0;
  /// Of `aborted`: requests with no terminal record — in flight at the crash.
  std::uint64_t abortedInFlight = 0;
  /// A torn frame was truncated at EOF (normal kill artifact).
  bool truncatedTail = false;

  std::uint64_t terminals() const { return ok + shed + degraded + aborted; }
  bool balanced() const { return accepted == terminals(); }
};

/// Append-side accounting. Thread-safe (JournalWriter serializes appends);
/// every record is durable when the call returns.
class RequestAccounting {
 public:
  /// Creates `path` or reopens it for append (a restarted server keeps
  /// appending to the same ledger; replay handles the union). Throws
  /// JournalError subtypes on unreadable/corrupt/mismatched journals.
  explicit RequestAccounting(const std::string& path);

  void accepted(std::uint64_t requestId);
  void terminal(std::uint64_t requestId, RequestOutcome outcome);

  /// First request id this server incarnation may assign: one past the
  /// highest id already journaled, so a restart never reuses an id (replay
  /// treats a reused id as corruption).
  std::uint64_t nextRequestId() const { return nextRequestId_; }

  const std::string& path() const { return writer_->path(); }

 private:
  std::unique_ptr<JournalWriter> writer_;
  std::uint64_t nextRequestId_ = 1;
};

/// Replays a ledger journal. Throws JournalError subtypes on corrupt bytes,
/// FrameFormatError-shaped JournalFormatError on unknown record types or
/// malformed payloads. A torn tail is reported via the ledger, not thrown.
ServeLedger replayLedger(const std::string& path);

}  // namespace scandiag::serve
