#include "serve/server.hpp"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>

#include "common/thread_pool.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace scandiag::serve {

namespace {

constexpr int kExitInterrupted = 6;

/// Milliseconds the accept loop sleeps in poll() between stop-token checks.
constexpr int kAcceptPollMs = 100;

/// Budget for best-effort replies the server refuses to block on (BUSY at
/// admission, the error reply after protocol garbage).
constexpr std::chrono::milliseconds kBestEffortWriteMs{1000};

int listenOn(const std::string& path) {
  struct sockaddr_un addr;
  memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    throw ServerFatalError("socket path '" + path + "' is empty or longer than " +
                           std::to_string(sizeof addr.sun_path - 1) + " bytes");
  }
  memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw ServerFatalError(std::string("socket: ") + strerror(errno));
  ::unlink(path.c_str());  // a stale socket from a killed server is expected
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw ServerFatalError("bind " + path + ": " + strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(path.c_str());
    throw ServerFatalError("listen " + path + ": " + strerror(err));
  }
  return fd;
}

}  // namespace

DiagnosisServer::DiagnosisServer(const DiagnosisService& service, ServeOptions options)
    : service_(&service), options_(std::move(options)) {
  stopToken_ = options_.stopToken != nullptr ? options_.stopToken : &privateStop_;
  if (options_.handlers == 0) options_.handlers = 1;
  if (options_.queueCapacity == 0) options_.queueCapacity = 1;
}

DiagnosisServer::~DiagnosisServer() = default;

void DiagnosisServer::stop() { stopToken_->cancel("stop requested"); }

bool DiagnosisServer::waitUntilListening(std::size_t timeoutMs) {
  std::unique_lock<std::mutex> lock(listenMutex_);
  listenCv_.wait_for(lock, std::chrono::milliseconds(timeoutMs),
                     [&] { return listening_ || finished_; });
  return listening_ && !finished_;
}

int DiagnosisServer::run() {
  if (!options_.journalPath.empty()) {
    try {
      accounting_ = std::make_unique<RequestAccounting>(options_.journalPath);
    } catch (const JournalError& e) {
      throw ServerFatalError(std::string("request ledger: ") + e.what());
    }
    // Never reuse an id a previous incarnation journaled.
    requestIds_.store(accounting_->nextRequestId(), std::memory_order_relaxed);
  }
  const int listenFd = listenOn(options_.socketPath);
  {
    std::lock_guard<std::mutex> lock(listenMutex_);
    listening_ = true;
  }
  listenCv_.notify_all();

  std::vector<std::thread> handlers;
  handlers.reserve(options_.handlers);
  for (std::size_t i = 0; i < options_.handlers; ++i) {
    handlers.emplace_back([this] { handlerLoop(); });
  }

  // ---- Accept loop: admission control happens here, before any parsing.
  while (!stopToken_->cancelled()) {
    struct pollfd pfd{listenFd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, kAcceptPollMs);
    if (rc < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks the stop token
      break;
    }
    if (rc == 0) continue;
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(queueMutex_);
      if (pendingFds_.size() < options_.queueCapacity) {
        pendingFds_.push_back(fd);
        admitted = true;
      }
    }
    if (admitted) {
      queueCv_.notify_one();
    } else {
      shedConnection(fd);
    }
  }

  // ---- Stage-one drain: stop accepting, sever idle connections, let
  // in-flight requests finish inside the drain budget.
  ::close(listenFd);
  draining_.store(true, std::memory_order_release);
  queueCv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(connMutex_);
    for (const auto& conn : activeConns_) {
      // Idle connections are parked in readFrame() waiting for a request
      // that will never be served; shutdown() turns that wait into an
      // immediate EOF. Busy connections keep their socket so the reply of
      // the request they are running still lands.
      if (!conn->busy.load(std::memory_order_acquire)) {
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }

  // ---- Stage-two: requests overrunning the budget are cancelled (their
  // handlers book ABORTED) and every remaining socket is severed.
  const auto budgetEnd =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(options_.drainBudgetMs);
  std::atomic<bool> handlersDone{false};
  std::thread joiner([&] {
    for (std::thread& h : handlers) h.join();
    handlersDone.store(true, std::memory_order_release);
  });
  while (!handlersDone.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < budgetEnd) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (!handlersDone.load(std::memory_order_acquire)) {
    abortToken_.cancel("drain budget exceeded");
    std::lock_guard<std::mutex> lock(connMutex_);
    for (const auto& conn : activeConns_) ::shutdown(conn->fd, SHUT_RDWR);
  }
  joiner.join();

  // Connections that were queued but never picked up: close without reply
  // (no request was read, so nothing enters the ledger — the client sees
  // EOF and retries).
  {
    std::lock_guard<std::mutex> lock(queueMutex_);
    for (int fd : pendingFds_) ::close(fd);
    pendingFds_.clear();
  }
  ::unlink(options_.socketPath.c_str());

  // Metrics snapshot last, through atomicWriteFile (obs::writeMetricsFile):
  // a second signal hard-exiting mid-flush can leave a stale temp file but
  // never a torn snapshot.
  if (!options_.metricsPath.empty()) {
    obs::MetricsContext context;
    context.circuit = options_.metricsCircuit;
    context.threads = globalPool().threadCount();
    try {
      obs::writeMetricsFile(options_.metricsPath, context);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "serve: metrics flush failed: %s\n", e.what());
    }
  }
  {
    std::lock_guard<std::mutex> lock(listenMutex_);
    listening_ = false;
    finished_ = true;
  }
  listenCv_.notify_all();
  return kExitInterrupted;
}

void DiagnosisServer::shedConnection(int fd) {
  const std::uint64_t id = nextRequestId();
  stats_.accepted.fetch_add(1, std::memory_order_relaxed);
  stats_.shed.fetch_add(1, std::memory_order_relaxed);
  obs::count(obs::Counter::ServeRequestsShed);
  if (accounting_) {
    accounting_->accepted(id);
    accounting_->terminal(id, RequestOutcome::Shed);
  }
  DiagnoseReply busy;
  busy.status = ReplyStatus::Busy;
  busy.requestId = id;
  busy.resolved = false;
  busy.confidence = 0.0;
  busy.message = "server busy: admission queue full";
  try {
    writeFrame(fd, kDiagnoseReplyFrame, encodeDiagnoseReply(busy), kBestEffortWriteMs);
  } catch (const FrameError&) {
    // Best effort: the client's retry path handles a bare EOF the same way.
  }
  ::close(fd);
}

void DiagnosisServer::handlerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queueMutex_);
      queueCv_.wait(lock, [&] {
        return draining_.load(std::memory_order_acquire) || !pendingFds_.empty();
      });
      if (draining_.load(std::memory_order_acquire)) return;
      fd = pendingFds_.front();
      pendingFds_.pop_front();
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(connMutex_);
      activeConns_.push_back(conn);
    }
    serveConnection(*conn);
    {
      std::lock_guard<std::mutex> lock(connMutex_);
      for (auto it = activeConns_.begin(); it != activeConns_.end(); ++it) {
        if (it->get() == conn.get()) {
          activeConns_.erase(it);
          break;
        }
      }
    }
    ::close(fd);
  }
}

void DiagnosisServer::serveConnection(Connection& conn) {
  const std::chrono::milliseconds ioTimeout(options_.ioTimeoutMs);
  // Connections are persistent: frames until the peer closes, an I/O bound
  // trips, the protocol is violated, or the server drains.
  for (;;) {
    if (draining_.load(std::memory_order_acquire)) return;
    Frame frame;
    try {
      frame = readFrame(conn.fd, ioTimeout);
    } catch (const PeerClosedError&) {
      return;
    } catch (const FrameTimeoutError&) {
      // Slowloris or idle: the peer had the whole I/O budget for one frame.
      return;
    } catch (const FrameFormatError&) {
      stats_.framesRejected.fetch_add(1, std::memory_order_relaxed);
      obs::count(obs::Counter::ServeFramesRejected);
      return;  // a byte stream that lied about itself cannot be re-synced
    } catch (const FrameCorruptError&) {
      stats_.framesRejected.fetch_add(1, std::memory_order_relaxed);
      obs::count(obs::Counter::ServeFramesRejected);
      return;
    } catch (const FrameIoError&) {
      return;
    }
    conn.busy.store(true, std::memory_order_release);
    bool keep = false;
    try {
      keep = dispatchFrame(conn, frame);
    } catch (const std::exception& e) {
      // dispatchFrame handles every expected failure itself; anything that
      // still escapes must not take the handler thread (and with it the
      // whole server) down — close this connection and keep serving.
      std::fprintf(stderr, "serve: handler error: %s\n", e.what());
    }
    conn.busy.store(false, std::memory_order_release);
    if (!keep) return;
  }
}

bool DiagnosisServer::dispatchFrame(Connection& conn, const Frame& frame) {
  const std::chrono::milliseconds ioTimeout(options_.ioTimeoutMs);
  switch (frame.type) {
    case kPingRequestFrame:
      try {
        writeFrame(conn.fd, kPingReplyFrame, frame.payload, ioTimeout);
        return true;
      } catch (const FrameError&) {
        return false;
      }
    case kStatsRequestFrame:
      try {
        writeFrame(conn.fd, kStatsReplyFrame, encodeStatsReply(stats_.snapshot()), ioTimeout);
        return true;
      } catch (const FrameError&) {
        return false;
      }
    case kDiagnoseRequestFrame:
      break;  // handled below
    default:
      stats_.framesRejected.fetch_add(1, std::memory_order_relaxed);
      obs::count(obs::Counter::ServeFramesRejected);
      return false;
  }

  DiagnoseRequest request;
  try {
    request = decodeDiagnoseRequest(frame.payload);
  } catch (const FrameFormatError&) {
    // The frame's CRC was fine but its content lies about itself — same
    // rejection class as a bad frame.
    stats_.framesRejected.fetch_add(1, std::memory_order_relaxed);
    obs::count(obs::Counter::ServeFramesRejected);
    return false;
  }

  const std::uint64_t id = nextRequestId();
  stats_.accepted.fetch_add(1, std::memory_order_relaxed);
  if (accounting_) accounting_->accepted(id);

  DiagnoseReply reply;
  try {
    // Compute on the existing pool so --threads bounds diagnosis
    // parallelism; this handler thread just waits for the future. At one
    // pool thread submit() runs inline right here — the serial code path.
    auto future = globalPool().submit([&] {
      return service_->handle(request, id, std::chrono::milliseconds(options_.requestDeadlineMs),
                              &abortToken_);
    });
    reply = future.get();
  } catch (const OperationCancelled&) {
    // Drain overran the budget mid-request: no reply, close, book exactly
    // what happened.
    bookTerminal(id, RequestOutcome::Aborted);
    return false;
  } catch (const std::exception& e) {
    reply.status = ReplyStatus::Error;
    reply.requestId = id;
    reply.resolved = false;
    reply.confidence = 0.0;
    reply.message = e.what();
  }

  try {
    writeFrame(conn.fd, kDiagnoseReplyFrame, encodeDiagnoseReply(reply), ioTimeout);
  } catch (const FrameError&) {
    // The answer existed but the client never durably received it.
    bookTerminal(id, RequestOutcome::Aborted);
    return false;
  }

  switch (reply.status) {
    case ReplyStatus::Ok:
      obs::count(obs::Counter::ServeRequestsOk);
      bookTerminal(id, RequestOutcome::Ok);
      return true;
    case ReplyStatus::Deadline:
      obs::count(obs::Counter::ServeDeadlineDegraded);
      bookTerminal(id, RequestOutcome::Degraded);
      return true;
    case ReplyStatus::Error:
      bookTerminal(id, RequestOutcome::Aborted);
      return true;  // request-level error; the connection itself is healthy
    case ReplyStatus::Busy:
      bookTerminal(id, RequestOutcome::Shed);  // unreachable from handle()
      return true;
  }
  return false;
}

void DiagnosisServer::bookTerminal(std::uint64_t requestId, RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::Ok: stats_.ok.fetch_add(1, std::memory_order_relaxed); break;
    case RequestOutcome::Shed: stats_.shed.fetch_add(1, std::memory_order_relaxed); break;
    case RequestOutcome::Degraded: stats_.degraded.fetch_add(1, std::memory_order_relaxed); break;
    case RequestOutcome::Aborted: stats_.aborted.fetch_add(1, std::memory_order_relaxed); break;
  }
  if (accounting_) accounting_->terminal(requestId, outcome);
}

}  // namespace scandiag::serve
