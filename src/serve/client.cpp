#include "serve/client.hpp"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "common/rng.hpp"

namespace scandiag::serve {

namespace {

/// RAII connect; fd() < 0 means the connect failed (errno preserved in why).
class ClientSocket {
 public:
  explicit ClientSocket(const std::string& path) {
    struct sockaddr_un addr;
    memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof addr.sun_path) {
      why_ = "socket path '" + path + "' is empty or too long";
      return;
    }
    memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      why_ = std::string("socket: ") + strerror(errno);
      return;
    }
    if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) != 0) {
      why_ = std::string("connect ") + path + ": " + strerror(errno);
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~ClientSocket() {
    if (fd_ >= 0) ::close(fd_);
  }
  ClientSocket(const ClientSocket&) = delete;
  ClientSocket& operator=(const ClientSocket&) = delete;

  int fd() const { return fd_; }
  const std::string& why() const { return why_; }

 private:
  int fd_ = -1;
  std::string why_;
};

/// Capped exponential backoff with jitter: uniform over [delay/2, delay]
/// where delay = min(base * 2^(attempt-1), cap). The half-floor keeps the
/// average wait meaningful; the jitter decorrelates a fleet of clients.
void backoff(const ClientOptions& options, std::size_t attempt, Xoroshiro128& rng) {
  std::uint64_t delay = options.backoffBaseMs;
  for (std::size_t i = 1; i < attempt && delay < options.backoffCapMs; ++i) delay *= 2;
  if (delay > options.backoffCapMs) delay = options.backoffCapMs;
  if (delay == 0) return;
  const std::uint64_t jittered = delay / 2 + rng.nextBelow(delay - delay / 2 + 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(jittered));
}

}  // namespace

DiagnoseReply requestDiagnosis(const ClientOptions& options, const DiagnoseRequest& request) {
  const std::chrono::milliseconds ioTimeout(options.ioTimeoutMs);
  const std::string payload = encodeDiagnoseRequest(request);
  Xoroshiro128 rng(options.jitterSeed);
  const std::size_t attempts = options.maxAttempts == 0 ? 1 : options.maxAttempts;
  std::string lastFailure = "no attempts made";
  for (std::size_t attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) backoff(options, attempt - 1, rng);
    ClientSocket sock(options.socketPath);
    if (sock.fd() < 0) {
      lastFailure = sock.why();  // server down or restarting: retryable
      continue;
    }
    try {
      writeFrame(sock.fd(), kDiagnoseRequestFrame, payload, ioTimeout);
      const Frame frame = readFrame(sock.fd(), ioTimeout);
      if (frame.type != kDiagnoseReplyFrame) {
        throw ClientError("server sent frame type " + std::to_string(frame.type) +
                          " where a diagnose reply was expected");
      }
      const DiagnoseReply reply = decodeDiagnoseReply(frame.payload);
      if (reply.status == ReplyStatus::Busy) {
        lastFailure = "server busy (request " + std::to_string(reply.requestId) + " shed)";
        continue;  // the whole point of the backoff
      }
      return reply;
    } catch (const PeerClosedError& e) {
      lastFailure = e.what();  // server draining mid-request: retryable
      continue;
    } catch (const FrameTimeoutError& e) {
      lastFailure = e.what();
      continue;
    } catch (const FrameIoError& e) {
      lastFailure = e.what();
      continue;
    }
    // FrameFormatError / FrameCorruptError escape: a server speaking garbage
    // will not improve with retries.
  }
  throw ClientError("diagnosis request failed after " + std::to_string(attempts) +
                    " attempt(s): " + lastFailure);
}

void ping(const ClientOptions& options) {
  ClientSocket sock(options.socketPath);
  if (sock.fd() < 0) throw ClientError(sock.why());
  const std::chrono::milliseconds ioTimeout(options.ioTimeoutMs);
  writeFrame(sock.fd(), kPingRequestFrame, "", ioTimeout);
  const Frame frame = readFrame(sock.fd(), ioTimeout);
  if (frame.type != kPingReplyFrame) {
    throw ClientError("server sent frame type " + std::to_string(frame.type) +
                      " where a ping reply was expected");
  }
}

StatsReply fetchStats(const ClientOptions& options) {
  const std::chrono::milliseconds ioTimeout(options.ioTimeoutMs);
  Xoroshiro128 rng(options.jitterSeed);
  const std::size_t attempts = options.maxAttempts == 0 ? 1 : options.maxAttempts;
  std::string lastFailure = "no attempts made";
  for (std::size_t attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) backoff(options, attempt - 1, rng);
    ClientSocket sock(options.socketPath);
    if (sock.fd() < 0) {
      lastFailure = sock.why();
      continue;
    }
    try {
      writeFrame(sock.fd(), kStatsRequestFrame, "", ioTimeout);
      const Frame frame = readFrame(sock.fd(), ioTimeout);
      if (frame.type == kDiagnoseReplyFrame &&
          decodeDiagnoseReply(frame.payload).status == ReplyStatus::Busy) {
        lastFailure = "server busy (connection shed)";  // shed at admission
        continue;
      }
      if (frame.type != kStatsReplyFrame) {
        throw ClientError("server sent frame type " + std::to_string(frame.type) +
                          " where a stats reply was expected");
      }
      return decodeStatsReply(frame.payload);
    } catch (const PeerClosedError& e) {
      lastFailure = e.what();
      continue;
    } catch (const FrameIoError& e) {
      lastFailure = e.what();
      continue;
    }
  }
  throw ClientError("stats request failed after " + std::to_string(attempts) +
                    " attempt(s): " + lastFailure);
}

}  // namespace scandiag::serve
