// Little-endian wire primitives shared by the serve protocol and the
// request-accounting ledger.
//
// Same byte discipline as the journal codec (common/journal.cpp) — u16/u32/
// u64 little-endian, length-prefixed strings — but with the read side built
// around a bounds-checked cursor that throws a typed error instead of
// trusting any length field: every payload that reaches these readers came
// off a socket or a crash-recovered file, so a wild length must surface as
// FrameFormatError, never as a multi-gigabyte allocation or an out-of-bounds
// read (the same hardening the tester-log parser and the journal reader got).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/frame.hpp"

namespace scandiag::serve::wire {

inline void putU16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

inline void putU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

inline void putU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

inline void putDouble(std::string& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  __builtin_memcpy(&bits, &v, sizeof bits);
  putU64(out, bits);
}

/// Length-prefixed string; the prefix is validated against `maxLen` on read.
inline void putString(std::string& out, const std::string& s) {
  putU32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked reader over one decoded payload. Every accessor throws
/// FrameFormatError when the payload is too short — a truncated or
/// length-lying message can never read past the buffer.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  std::uint16_t u16() { return static_cast<std::uint16_t>(integer(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(integer(4)); }
  std::uint64_t u64() { return integer(8); }

  double f64() {
    const std::uint64_t bits = integer(8);
    double v;
    __builtin_memcpy(&v, &bits, sizeof v);
    return v;
  }

  /// Reads a length-prefixed string, rejecting prefixes beyond `maxLen` or
  /// beyond the remaining payload *before* allocating.
  std::string str(std::size_t maxLen) {
    const std::uint32_t len = u32();
    if (len > maxLen) {
      throw FrameFormatError("wire: string length " + std::to_string(len) +
                             " exceeds cap " + std::to_string(maxLen));
    }
    if (len > bytes_.size() - pos_) {
      throw FrameFormatError("wire: string length " + std::to_string(len) +
                             " overruns payload (" +
                             std::to_string(bytes_.size() - pos_) + " bytes left)");
    }
    std::string s(bytes_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool exhausted() const { return pos_ == bytes_.size(); }

  /// Messages are fixed layouts: trailing bytes mean a framing bug or a
  /// forged message, both of which must be loud.
  void expectExhausted(const char* what) const {
    if (!exhausted()) {
      throw FrameFormatError(std::string("wire: ") + what + " has " +
                             std::to_string(remaining()) + " trailing byte(s)");
    }
  }

 private:
  std::uint64_t integer(std::size_t width) {
    if (width > bytes_.size() - pos_) {
      throw FrameFormatError("wire: message truncated (need " + std::to_string(width) +
                             " bytes, have " + std::to_string(bytes_.size() - pos_) + ")");
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < width; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes_[pos_ + i])) << (8 * i);
    }
    pos_ += width;
    return v;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace scandiag::serve::wire
