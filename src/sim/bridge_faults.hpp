// Two-line bridging faults — a second defect model beyond single stuck-at.
//
// A resistive short between two nets makes them interact: wired-AND/OR (both
// nets take the AND/OR of their driven values) or dominant (the aggressor
// overwrites the victim). Diagnosis-wise a bridge is interesting because its
// failing cells come from the UNION of two fault cones — exactly the paper's
// Fig. 2 discussion of overlapping/non-overlapping cone segments — so it
// stresses two-step partitioning's clustering assumption harder than any
// single stuck-at. The diagnosis stack consumes the resulting FaultResponse
// unchanged (it never cared what produced the error streams).
//
// Only non-feedback bridges are modeled (no combinational path between the
// two nets in either direction): feedback bridges can oscillate and need a
// different evaluation semantics entirely.
#pragma once

#include <vector>

#include "sim/fault_simulator.hpp"

namespace scandiag {

enum class BridgeKind : std::uint8_t {
  WiredAnd,    // both nets read a AND b
  WiredOr,     // both nets read a OR b
  ADominatesB, // net b reads a; a unaffected
  BDominatesA, // net a reads b; b unaffected
};

std::string_view bridgeKindName(BridgeKind kind);

struct BridgeFault {
  GateId a = kInvalidGate;
  GateId b = kInvalidGate;
  BridgeKind kind = BridgeKind::WiredAnd;
};

/// True iff no combinational path connects a and b in either direction
/// (bridging them cannot create a loop).
bool isFeedbackFree(const Netlist& netlist, GateId a, GateId b);

/// Deterministically samples up to `count` feedback-free bridge candidates,
/// biased toward structurally nearby net pairs (shorts happen between
/// neighbouring wires). Kinds cycle through all four.
std::vector<BridgeFault> enumerateBridgeCandidates(const Netlist& netlist, std::size_t count,
                                                   std::uint64_t seed);

/// Simulates one bridge against the fault simulator's good machine and
/// returns the standard response (failing cells + error streams). The
/// returned FaultResponse's `fault` field carries site a for reporting only.
FaultResponse simulateBridge(const FaultSimulator& simulator, const BridgeFault& bridge);

}  // namespace scandiag
