#include "sim/logic_simulator.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace scandiag {

std::string describeFault(const Netlist& netlist, const FaultSite& fault) {
  std::ostringstream os;
  os << netlist.gateName(fault.gate);
  if (!fault.isOutputFault()) os << ".in" << fault.pin;
  os << "/SA" << (fault.stuckAt ? 1 : 0);
  return os.str();
}

LogicSimulator::LogicSimulator(const Netlist& netlist)
    : netlist_(&netlist), lev_(levelize(netlist)) {}

namespace {

SimWord combine(GateType type, const std::vector<GateId>& fanins,
                const std::vector<SimWord>& values, int faultPin, SimWord forced) {
  auto in = [&](std::size_t k) -> SimWord {
    return static_cast<int>(k) == faultPin ? forced : values[fanins[k]];
  };
  SimWord acc;
  switch (type) {
    case GateType::Buf:
      return in(0);
    case GateType::Not:
      return ~in(0);
    case GateType::And:
    case GateType::Nand:
      acc = in(0);
      for (std::size_t k = 1; k < fanins.size(); ++k) acc &= in(k);
      return type == GateType::And ? acc : ~acc;
    case GateType::Or:
    case GateType::Nor:
      acc = in(0);
      for (std::size_t k = 1; k < fanins.size(); ++k) acc |= in(k);
      return type == GateType::Or ? acc : ~acc;
    case GateType::Xor:
    case GateType::Xnor:
      acc = in(0);
      for (std::size_t k = 1; k < fanins.size(); ++k) acc ^= in(k);
      return type == GateType::Xor ? acc : ~acc;
    case GateType::Const0:
      return SimWord{0};
    case GateType::Const1:
      return ~SimWord{0};
    case GateType::Input:
    case GateType::Dff:
      break;
  }
  throw std::logic_error("combine() called on a source gate");
}

}  // namespace

void LogicSimulator::evaluate(std::vector<SimWord>& values) const {
  SCANDIAG_REQUIRE(values.size() == netlist_->gateCount(), "value vector size mismatch");
  for (GateId id = 0; id < netlist_->gateCount(); ++id) {
    const GateType t = netlist_->gate(id).type;
    if (t == GateType::Const0) values[id] = SimWord{0};
    if (t == GateType::Const1) values[id] = ~SimWord{0};
  }
  for (GateId id : lev_.order) {
    const Gate& g = netlist_->gate(id);
    values[id] = combine(g.type, g.fanins, values, FaultSite::kOutputPin, 0);
  }
}

SimWord LogicSimulator::evalGate(GateId id, const std::vector<SimWord>& values) const {
  const Gate& g = netlist_->gate(id);
  return combine(g.type, g.fanins, values, FaultSite::kOutputPin, 0);
}

SimWord LogicSimulator::evalGateWithPinFault(GateId id, const std::vector<SimWord>& values,
                                             int pin, SimWord forced) const {
  const Gate& g = netlist_->gate(id);
  return combine(g.type, g.fanins, values, pin, forced);
}

void LogicSimulator::evaluateFaulty(const FaultSite& fault, const FaultCone& cone,
                                    std::vector<SimWord>& values) const {
  SCANDIAG_REQUIRE(values.size() == netlist_->gateCount(), "value vector size mismatch");
  const SimWord stuck = fault.stuckAt ? ~SimWord{0} : SimWord{0};
  const GateType siteType = netlist_->gate(fault.gate).type;

  if (fault.isOutputFault() && isSourceType(siteType)) {
    values[fault.gate] = stuck;
  }
  for (GateId id : cone.gates) {
    if (id == fault.gate) {
      if (fault.isOutputFault()) {
        values[id] = stuck;
      } else {
        values[id] = evalGateWithPinFault(id, values, fault.pin, stuck);
      }
    } else {
      const Gate& g = netlist_->gate(id);
      values[id] = combine(g.type, g.fanins, values, FaultSite::kOutputPin, 0);
    }
  }
  // A pin fault whose owner is not in the cone list (e.g. a DFF D pin) has no
  // combinational re-evaluation at all; the fault simulator handles the
  // capture-side effect directly.
}

}  // namespace scandiag
