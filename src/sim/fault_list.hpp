// Single-stuck-at fault universe: enumeration, equivalence collapsing,
// deterministic sampling.
//
// Enumeration follows standard practice:
//  * a stem (output) fault pair on every gate, including primary inputs and
//    DFF outputs (a stuck scan-cell Q) and DFF D pins (a stuck capture path);
//  * branch (input-pin) fault pairs only where the driving net fans out —
//    with fanout 1 the branch fault is identical to the stem fault.
// Collapsing applies the classic controlling-value equivalences
// (AND in-SA0 ≡ out-SA0, NAND in-SA0 ≡ out-SA1, OR in-SA1 ≡ out-SA1,
// NOR in-SA1 ≡ out-SA0, BUF/NOT input faults ≡ output faults).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/logic_simulator.hpp"

namespace scandiag {

/// Streaming fault enumeration: yields the exact sequence
/// FaultList::enumerateCollapsed / enumerateAll materializes, one site per
/// next() call, from O(1) enumerator state (a gate cursor plus pin/polarity
/// counters — no per-site storage). Million-cell meta-chain sweeps walk the
/// universe through this so per-fault memory stays flat regardless of
/// circuit size; FaultList::enumerate* is now a thin collector over it, so
/// the two can never disagree.
class FaultEnumerator {
 public:
  FaultEnumerator(const Netlist& netlist, bool collapse);

  /// Next fault site in enumeration order, or nullopt when exhausted.
  std::optional<FaultSite> next();

  /// Sites yielded so far.
  std::uint64_t yielded() const { return yielded_; }

 private:
  const Netlist* netlist_;
  bool collapse_;
  GateId gate_ = 0;       // current gate under enumeration
  unsigned stemPhase_ = 0;  // 0 = sa0 pending, 1 = sa1 pending, 2 = stems done
  std::size_t pin_ = 0;     // current fanin pin
  unsigned pinPhase_ = 0;   // 0 = sa0 pending, 1 = sa1 pending
  std::uint64_t yielded_ = 0;
};

class FaultList {
 public:
  FaultList() = default;
  explicit FaultList(std::vector<FaultSite> faults);

  /// Collapsed fault universe of `netlist`.
  static FaultList enumerateCollapsed(const Netlist& netlist);
  /// Uncollapsed universe (all stems + all branches at fanout stems).
  static FaultList enumerateAll(const Netlist& netlist);

  const std::vector<FaultSite>& faults() const { return faults_; }
  std::size_t size() const { return faults_.size(); }

  /// Deterministic uniform sample of min(n, size()) distinct faults.
  std::vector<FaultSite> sample(std::size_t n, std::uint64_t seed) const;

 private:
  std::vector<FaultSite> faults_;
};

}  // namespace scandiag
