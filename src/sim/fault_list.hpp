// Single-stuck-at fault universe: enumeration, equivalence collapsing,
// deterministic sampling.
//
// Enumeration follows standard practice:
//  * a stem (output) fault pair on every gate, including primary inputs and
//    DFF outputs (a stuck scan-cell Q) and DFF D pins (a stuck capture path);
//  * branch (input-pin) fault pairs only where the driving net fans out —
//    with fanout 1 the branch fault is identical to the stem fault.
// Collapsing applies the classic controlling-value equivalences
// (AND in-SA0 ≡ out-SA0, NAND in-SA0 ≡ out-SA1, OR in-SA1 ≡ out-SA1,
// NOR in-SA1 ≡ out-SA0, BUF/NOT input faults ≡ output faults).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/logic_simulator.hpp"

namespace scandiag {

class FaultList {
 public:
  FaultList() = default;
  explicit FaultList(std::vector<FaultSite> faults);

  /// Collapsed fault universe of `netlist`.
  static FaultList enumerateCollapsed(const Netlist& netlist);
  /// Uncollapsed universe (all stems + all branches at fanout stems).
  static FaultList enumerateAll(const Netlist& netlist);

  const std::vector<FaultSite>& faults() const { return faults_; }
  std::size_t size() const { return faults_.size(); }

  /// Deterministic uniform sample of min(n, size()) distinct faults.
  std::vector<FaultSite> sample(std::size_t n, std::uint64_t seed) const;

 private:
  std::vector<FaultSite> faults_;
};

}  // namespace scandiag
