// Parallel-fault simulation: 64 faults per pass, one bit lane each.
//
// FaultSimulator is parallel-pattern single-fault (PPSFP): great when you
// need each fault's full error streams for diagnosis. For *fault grading* —
// "which of these 10,000 faults does the pattern set detect at all?" — the
// complementary engine wins: pack 64 faulty machines into the bit lanes of
// one evaluation, walk the patterns in order, and drop a lane the moment its
// fault is detected. Most detectable faults fall within the first few dozen
// patterns (see bench_ext_coverage), so lanes die fast and whole words drop
// out early.
//
// Detection here means scan-cell detection (a capture differs from the good
// machine), matching FaultSimulator::simulate(f).detected() exactly — the
// tests hold the two engines equal fault-for-fault.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/watchdog.hpp"
#include "sim/fault_simulator.hpp"

namespace scandiag {

class ParallelFaultSimulator {
 public:
  ParallelFaultSimulator(const Netlist& netlist, const PatternSet& patterns);

  /// detected[i] == the pattern set detects faults[i] at some scan cell.
  /// Batches of 64 faults fan out across globalPool(); the result is
  /// bit-identical for every thread count (each batch only reads shared
  /// state and owns its own output word). `control` is polled between
  /// batches; a trip unwinds as OperationCancelled (inert by default).
  std::vector<bool> detectFaults(const std::vector<FaultSite>& faults,
                                 const RunControl& control = {}) const;

  /// Convenience: count of detected faults (coverage numerator).
  std::size_t countDetected(const std::vector<FaultSite>& faults) const;

 private:
  /// Reusable per-worker buffers: one BatchScratch lives on each pool
  /// worker's stack for the whole chunk of batches it owns, so the four
  /// O(gateCount) vectors are allocated once per worker instead of once per
  /// batch. detectBatch() leaves the injection masks all-zero on return
  /// (clearing exactly the gates it touched), keeping reuse exact.
  /// Cache-line aligned so two workers' scratch headers (the vector
  /// control blocks they update on every batch) never share a line.
  struct alignas(64) BatchScratch {
    explicit BatchScratch(std::size_t gateCount)
        : force0(gateCount, 0), force1(gateCount, 0), hasPinLane(gateCount, 0),
          values(gateCount, 0) {}
    std::vector<SimWord> force0, force1;  // per-gate stuck-at lane masks
    std::vector<std::uint8_t> hasPinLane;
    std::vector<SimWord> values;
    std::vector<std::pair<GateId, std::size_t>> pinLanes;  // (owner gate, lane)
  };

  /// One 64-lane pass over faults[base, base+64); bit l of the result is the
  /// detection verdict of faults[base + l].
  SimWord detectBatch(const std::vector<FaultSite>& faults, std::size_t base,
                      BatchScratch& scratch) const;
  const Netlist* netlist_;
  const PatternSet* patterns_;
  LogicSimulator sim_;
  /// good_[t words][gate] — fault-free values, pattern-per-bit (PPSFP layout,
  /// reused to read single-pattern good bits).
  std::vector<std::vector<SimWord>> good_;
};

}  // namespace scandiag
