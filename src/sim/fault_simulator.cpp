#include "sim/fault_simulator.hpp"

#include "common/assert.hpp"
#include "netlist/cone_analysis.hpp"
#include "obs/metrics.hpp"

namespace scandiag {

PatternSet::PatternSet(const Netlist& netlist, std::size_t numPatterns)
    : numPatterns_(numPatterns), streams_(netlist.gateCount()) {
  SCANDIAG_REQUIRE(numPatterns > 0, "pattern set must be nonempty");
  for (GateId id = 0; id < netlist.gateCount(); ++id) {
    const GateType t = netlist.gate(id).type;
    if (t == GateType::Input || t == GateType::Dff) streams_[id].resize(numPatterns);
  }
}

const BitVector& PatternSet::stream(GateId id) const {
  SCANDIAG_REQUIRE(isSource(id), "stream() on a non-source gate");
  return streams_[id];
}

BitVector& PatternSet::stream(GateId id) {
  SCANDIAG_REQUIRE(isSource(id), "stream() on a non-source gate");
  return streams_[id];
}

SimWord PatternSet::word(GateId id, std::size_t w) const {
  const BitVector& s = streams_[id];
  if (s.empty()) return SimWord{0};
  return w < s.wordCount() ? s.word(w) : SimWord{0};
}

FaultSimulator::FaultSimulator(const Netlist& netlist, const PatternSet& patterns)
    : netlist_(&netlist), patterns_(&patterns), sim_(netlist) {
  obs::PhaseScope phase(obs::Phase::GoodMachineSim);
  const std::size_t words = patterns.wordCount();
  const std::size_t numDffs = netlist.dffs().size();

  dffOrdinal_.assign(netlist.gateCount(), static_cast<std::size_t>(-1));
  for (std::size_t k = 0; k < numDffs; ++k) dffOrdinal_[netlist.dffs()[k]] = k;

  goodValues_.assign(words, std::vector<SimWord>(netlist.gateCount(), 0));
  goodCaptures_.assign(numDffs, BitVector(patterns.numPatterns()));
  for (std::size_t w = 0; w < words; ++w) {
    std::vector<SimWord>& values = goodValues_[w];
    for (GateId id = 0; id < netlist.gateCount(); ++id) {
      if (patterns.isSource(id)) values[id] = patterns.word(id, w);
    }
    sim_.evaluate(values);
    for (std::size_t k = 0; k < numDffs; ++k) {
      const GateId driver = netlist.gate(netlist.dffs()[k]).fanins[0];
      goodCaptures_[k].setWord(w, values[driver]);
    }
  }
}

FaultResponse FaultSimulator::simulate(const FaultSite& fault) const {
  SCANDIAG_REQUIRE(fault.gate < netlist_->gateCount(), "fault site out of range");
  obs::count(obs::Counter::FaultsSimulated);
  obs::PhaseScope phase(obs::Phase::FaultySim);
  const std::size_t numDffs = netlist_->dffs().size();
  const std::size_t numPatterns = patterns_->numPatterns();
  const std::size_t words = patterns_->wordCount();

  FaultResponse resp;
  resp.fault = fault;
  resp.failingCells = BitVector(numDffs);

  // A branch fault on a DFF D pin corrupts only that cell's capture: the
  // faulty captured value never re-enters the circuit because the next
  // pattern reloads the whole chain from the PRPG.
  const bool dffPinFault =
      !fault.isOutputFault() && netlist_->gate(fault.gate).type == GateType::Dff;
  if (dffPinFault) {
    const std::size_t k = dffOrdinal_[fault.gate];
    BitVector err(numPatterns);
    for (std::size_t w = 0; w < words; ++w) {
      const SimWord stuck = fault.stuckAt ? ~SimWord{0} : SimWord{0};
      err.setWord(w, goodCaptures_[k].word(w) ^ stuck);
    }
    if (err.any()) {
      resp.failingCells.set(k);
      resp.failingCellOrdinals.push_back(k);
      resp.errorStreams.push_back(std::move(err));
    }
    return resp;
  }

  const FaultCone cone = computeCone(*netlist_, sim_.levelization(), fault.gate);
  if (cone.reachableDffs.none()) return resp;  // scan-unobservable fault

  // Per-cell error accumulation, word by word.
  std::vector<std::size_t> coneOrdinals = cone.reachableDffs.toIndices();
  std::vector<BitVector> errs(coneOrdinals.size(), BitVector(numPatterns));
  std::vector<SimWord> values;
  for (std::size_t w = 0; w < words; ++w) {
    values = goodValues_[w];
    sim_.evaluateFaulty(fault, cone, values);
    for (std::size_t i = 0; i < coneOrdinals.size(); ++i) {
      const std::size_t k = coneOrdinals[i];
      const GateId driver = netlist_->gate(netlist_->dffs()[k]).fanins[0];
      errs[i].setWord(w, values[driver] ^ goodValues_[w][driver]);
    }
  }
  for (std::size_t i = 0; i < coneOrdinals.size(); ++i) {
    if (errs[i].any()) {
      resp.failingCells.set(coneOrdinals[i]);
      resp.failingCellOrdinals.push_back(coneOrdinals[i]);
      resp.errorStreams.push_back(std::move(errs[i]));
    }
  }
  return resp;
}

std::vector<FaultResponse> FaultSimulator::simulateAll(
    const std::vector<FaultSite>& faults) const {
  std::vector<FaultResponse> out;
  out.reserve(faults.size());
  for (const FaultSite& f : faults) out.push_back(simulate(f));
  return out;
}

std::vector<FaultResponse> FaultSimulator::collectDetected(
    const std::vector<FaultSite>& candidates, std::size_t target) const {
  std::vector<FaultResponse> out;
  out.reserve(target);
  for (const FaultSite& f : candidates) {
    if (out.size() >= target) break;
    FaultResponse r = simulate(f);
    if (r.detected()) out.push_back(std::move(r));
  }
  return out;
}

}  // namespace scandiag
