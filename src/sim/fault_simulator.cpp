#include "sim/fault_simulator.hpp"

#include <unordered_map>

#include "common/assert.hpp"
#include "netlist/cone_analysis.hpp"
#include "obs/metrics.hpp"

namespace scandiag {

PatternSet::PatternSet(const Netlist& netlist, std::size_t numPatterns)
    : numPatterns_(numPatterns), streams_(netlist.gateCount()) {
  SCANDIAG_REQUIRE(numPatterns > 0, "pattern set must be nonempty");
  for (GateId id = 0; id < netlist.gateCount(); ++id) {
    const GateType t = netlist.gate(id).type;
    if (t == GateType::Input || t == GateType::Dff) streams_[id].resize(numPatterns);
  }
}

const BitVector& PatternSet::stream(GateId id) const {
  SCANDIAG_REQUIRE(isSource(id), "stream() on a non-source gate");
  return streams_[id];
}

BitVector& PatternSet::stream(GateId id) {
  SCANDIAG_REQUIRE(isSource(id), "stream() on a non-source gate");
  return streams_[id];
}

SimWord PatternSet::word(GateId id, std::size_t w) const {
  const BitVector& s = streams_[id];
  if (s.empty()) return SimWord{0};
  return w < s.wordCount() ? s.word(w) : SimWord{0};
}

FaultSimulator::FaultSimulator(const Netlist& netlist, const PatternSet& patterns)
    : netlist_(&netlist), patterns_(&patterns), sim_(netlist) {
  obs::PhaseScope phase(obs::Phase::GoodMachineSim);
  const std::size_t words = patterns.wordCount();
  const std::size_t numDffs = netlist.dffs().size();

  dffOrdinal_.assign(netlist.gateCount(), static_cast<std::size_t>(-1));
  for (std::size_t k = 0; k < numDffs; ++k) dffOrdinal_[netlist.dffs()[k]] = k;

  goodValues_.assign(words, std::vector<SimWord>(netlist.gateCount(), 0));
  goodCaptures_.assign(numDffs, BitVector(patterns.numPatterns()));
  coneCache_ = std::make_unique<ConeEntry[]>(netlist.gateCount());
  for (std::size_t w = 0; w < words; ++w) {
    std::vector<SimWord>& values = goodValues_[w];
    for (GateId id = 0; id < netlist.gateCount(); ++id) {
      if (patterns.isSource(id)) values[id] = patterns.word(id, w);
    }
    sim_.evaluate(values);
    for (std::size_t k = 0; k < numDffs; ++k) {
      const GateId driver = netlist.gate(netlist.dffs()[k]).fanins[0];
      goodCaptures_[k].setWord(w, values[driver]);
    }
  }
}

FaultResponse FaultSimulator::dffPinResponse(const FaultSite& fault) const {
  // A branch fault on a DFF D pin corrupts only that cell's capture: the
  // faulty captured value never re-enters the circuit because the next
  // pattern reloads the whole chain from the PRPG.
  const std::size_t numPatterns = patterns_->numPatterns();
  const std::size_t words = patterns_->wordCount();
  FaultResponse resp;
  resp.fault = fault;
  resp.failingCells = BitVector(netlist_->dffs().size());
  const std::size_t k = dffOrdinal_[fault.gate];
  BitVector err(numPatterns);
  for (std::size_t w = 0; w < words; ++w) {
    const SimWord stuck = fault.stuckAt ? ~SimWord{0} : SimWord{0};
    err.setWord(w, goodCaptures_[k].word(w) ^ stuck);
  }
  if (err.any()) {
    resp.failingCells.set(k);
    resp.failingCellOrdinals.push_back(k);
    resp.errorStreams.push_back(std::move(err));
  }
  return resp;
}

const FaultSimulator::ConeEntry& FaultSimulator::coneEntry(GateId site) const {
  ConeEntry& entry = coneCache_[site];
  bool builtNow = false;
  std::call_once(entry.once, [&] {
    builtNow = true;
    entry.cone = computeCone(*netlist_, sim_.levelization(), site);
    entry.sourceSite = isSourceType(netlist_->gate(site).type);
    entry.ordinals = entry.cone.reachableDffs.toIndices();
    // Save-slot layout: cone.gates in order, then (for a source site) one
    // extra slot for the site itself, which evaluateFaulty forces directly.
    std::unordered_map<GateId, std::size_t> slotOf;
    slotOf.reserve(entry.cone.gates.size() + 1);
    for (std::size_t j = 0; j < entry.cone.gates.size(); ++j) {
      slotOf.emplace(entry.cone.gates[j], j);
    }
    if (entry.sourceSite) slotOf.emplace(site, entry.cone.gates.size());
    entry.drivers.reserve(entry.ordinals.size());
    entry.driverSlot.reserve(entry.ordinals.size());
    for (const std::size_t k : entry.ordinals) {
      const GateId driver = netlist_->gate(netlist_->dffs()[k]).fanins[0];
      // A DFF is reachable only via its D-input driver, so the driver is a
      // visited gate: combinational (in cone.gates) or the source site.
      const auto it = slotOf.find(driver);
      SCANDIAG_ASSERT(it != slotOf.end(), "reachable DFF driver outside the fault cone");
      entry.drivers.push_back(driver);
      entry.driverSlot.push_back(it->second);
    }
  });
  // Hits = cone-path simulate calls minus distinct sites, both functions of
  // the fault list alone — deterministic at every thread count.
  if (!builtNow) obs::count(obs::Counter::ConeCacheHits);
  return entry;
}

FaultResponse FaultSimulator::simulate(const FaultSite& fault) const {
  SCANDIAG_REQUIRE(fault.gate < netlist_->gateCount(), "fault site out of range");
  obs::count(obs::Counter::FaultsSimulated);
  obs::PhaseScope phase(obs::Phase::FaultySim);
  const std::size_t numPatterns = patterns_->numPatterns();
  const std::size_t words = patterns_->wordCount();

  if (!fault.isOutputFault() && netlist_->gate(fault.gate).type == GateType::Dff) {
    return dffPinResponse(fault);
  }

  FaultResponse resp;
  resp.fault = fault;
  resp.failingCells = BitVector(netlist_->dffs().size());

  const ConeEntry& entry = coneEntry(fault.gate);
  const FaultCone& cone = entry.cone;
  if (cone.reachableDffs.none()) return resp;  // scan-unobservable fault

  const std::size_t numGates = cone.gates.size();
  const std::size_t saveCount = numGates + (entry.sourceSite ? 1 : 0);
  const std::size_t numCells = entry.ordinals.size();
  obs::count(obs::Counter::ScratchGatesTouched, saveCount * words);

  scratch_.saved.resize(saveCount);
  scratch_.errWords.assign(numCells * words, SimWord{0});

  // Stuck-at forcing sets pattern lanes beyond numPatterns too; mask the tail
  // word so those lanes can never masquerade as errors.
  const std::size_t rem = numPatterns % 64;
  const SimWord tailMask = rem == 0 ? ~SimWord{0} : (SimWord{1} << rem) - 1;

  for (std::size_t w = 0; w < words; ++w) {
    std::vector<SimWord>& values = goodValues_[w];
    // Save the gates evaluateFaulty may write, evaluate the faulty machine in
    // place, read the captured error words, restore — O(cone), not O(gates).
    for (std::size_t j = 0; j < numGates; ++j) scratch_.saved[j] = values[cone.gates[j]];
    if (entry.sourceSite) scratch_.saved[numGates] = values[fault.gate];
    sim_.evaluateFaulty(fault, cone, values);
    const SimWord mask = w + 1 == words ? tailMask : ~SimWord{0};
    for (std::size_t i = 0; i < numCells; ++i) {
      const SimWord good = scratch_.saved[entry.driverSlot[i]];
      scratch_.errWords[i * words + w] = (values[entry.drivers[i]] ^ good) & mask;
    }
    for (std::size_t j = 0; j < numGates; ++j) values[cone.gates[j]] = scratch_.saved[j];
    if (entry.sourceSite) values[fault.gate] = scratch_.saved[numGates];
  }

  for (std::size_t i = 0; i < numCells; ++i) {
    const SimWord* ew = scratch_.errWords.data() + i * words;
    bool any = false;
    for (std::size_t w = 0; w < words && !any; ++w) any = ew[w] != 0;
    if (!any) continue;
    const std::size_t k = entry.ordinals[i];
    BitVector err(numPatterns);
    for (std::size_t w = 0; w < words; ++w) err.setWord(w, ew[w]);
    resp.failingCells.set(k);
    resp.failingCellOrdinals.push_back(k);
    resp.errorStreams.push_back(std::move(err));
  }
  return resp;
}

FaultResponse FaultSimulator::simulateReference(const FaultSite& fault) const {
  SCANDIAG_REQUIRE(fault.gate < netlist_->gateCount(), "fault site out of range");
  const std::size_t numPatterns = patterns_->numPatterns();
  const std::size_t words = patterns_->wordCount();

  if (!fault.isOutputFault() && netlist_->gate(fault.gate).type == GateType::Dff) {
    return dffPinResponse(fault);
  }

  FaultResponse resp;
  resp.fault = fault;
  resp.failingCells = BitVector(netlist_->dffs().size());

  const FaultCone cone = computeCone(*netlist_, sim_.levelization(), fault.gate);
  if (cone.reachableDffs.none()) return resp;  // scan-unobservable fault

  // Per-cell error accumulation, word by word, against a fresh full copy of
  // the good values (the original algorithm, kept as the parity oracle).
  std::vector<std::size_t> coneOrdinals = cone.reachableDffs.toIndices();
  std::vector<BitVector> errs(coneOrdinals.size(), BitVector(numPatterns));
  std::vector<SimWord> values;
  for (std::size_t w = 0; w < words; ++w) {
    values = goodValues_[w];
    sim_.evaluateFaulty(fault, cone, values);
    for (std::size_t i = 0; i < coneOrdinals.size(); ++i) {
      const std::size_t k = coneOrdinals[i];
      const GateId driver = netlist_->gate(netlist_->dffs()[k]).fanins[0];
      errs[i].setWord(w, values[driver] ^ goodValues_[w][driver]);
    }
  }
  for (std::size_t i = 0; i < coneOrdinals.size(); ++i) {
    if (errs[i].any()) {
      resp.failingCells.set(coneOrdinals[i]);
      resp.failingCellOrdinals.push_back(coneOrdinals[i]);
      resp.errorStreams.push_back(std::move(errs[i]));
    }
  }
  return resp;
}

std::vector<FaultResponse> FaultSimulator::simulateAll(
    const std::vector<FaultSite>& faults) const {
  std::vector<FaultResponse> out;
  out.reserve(faults.size());
  for (const FaultSite& f : faults) out.push_back(simulate(f));
  return out;
}

std::vector<FaultResponse> FaultSimulator::collectDetected(
    const std::vector<FaultSite>& candidates, std::size_t target) const {
  std::vector<FaultResponse> out;
  out.reserve(target);
  for (const FaultSite& f : candidates) {
    if (out.size() >= target) break;
    FaultResponse r = simulate(f);
    if (r.detected()) out.push_back(std::move(r));
  }
  return out;
}

}  // namespace scandiag
