// 64-way bit-parallel gate-level logic simulation.
//
// One evaluation processes 64 independent patterns at once: each gate's value
// is a 64-bit word whose bit t is the gate's logic value under pattern t.
// Sources (primary inputs, scan-loaded DFF outputs, constants) are set by the
// caller; evaluate() fills every combinational gate in levelized order.
//
// The faulty-evaluation entry point re-evaluates only the fault's output cone
// against a completed good evaluation, which keeps per-fault cost proportional
// to cone size instead of circuit size.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/cone_analysis.hpp"
#include "netlist/levelizer.hpp"
#include "netlist/netlist.hpp"

namespace scandiag {

using SimWord = std::uint64_t;

/// Single stuck-at fault site. pin == kOutputPin is a stem (output) fault;
/// otherwise the fault sits on fanin `pin` of `gate` (a branch fault, distinct
/// from the stem when the driver has fanout > 1).
struct FaultSite {
  GateId gate = kInvalidGate;
  int pin = kOutputPin;
  bool stuckAt = false;

  static constexpr int kOutputPin = -1;

  bool isOutputFault() const { return pin == kOutputPin; }
  friend bool operator==(const FaultSite&, const FaultSite&) = default;
};

/// Human-readable fault name, e.g. "g42/SA1" or "g42.in2/SA0".
std::string describeFault(const Netlist& netlist, const FaultSite& fault);

class LogicSimulator {
 public:
  explicit LogicSimulator(const Netlist& netlist);

  const Netlist& netlist() const { return *netlist_; }
  const Levelization& levelization() const { return lev_; }

  /// values.size() == gateCount(). Source entries must be pre-set by the
  /// caller (Const0/Const1 are overwritten with their constants); all
  /// combinational entries are (re)computed.
  void evaluate(std::vector<SimWord>& values) const;

  /// Evaluates one gate from the given value vector (no fault).
  SimWord evalGate(GateId id, const std::vector<SimWord>& values) const;

  /// Faulty re-evaluation restricted to `cone` (which must be
  /// computeCone(..., fault.gate)). `values` must hold a completed good
  /// evaluation on entry; on return, entries of cone gates (and of
  /// fault.gate, for source-output faults) hold faulty values. Other entries
  /// are untouched — callers needing the good values again must keep a copy.
  void evaluateFaulty(const FaultSite& fault, const FaultCone& cone,
                      std::vector<SimWord>& values) const;

 private:
  SimWord evalGateWithPinFault(GateId id, const std::vector<SimWord>& values, int pin,
                               SimWord forced) const;

  const Netlist* netlist_;
  Levelization lev_;
};

}  // namespace scandiag
