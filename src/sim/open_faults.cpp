#include "sim/open_faults.hpp"

#include <algorithm>
#include <map>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace scandiag {

std::vector<GateId> enumerateOpenSites(const Netlist& netlist, std::size_t count,
                                       std::uint64_t seed) {
  std::vector<GateId> pool;
  for (GateId id = 0; id < netlist.gateCount(); ++id) {
    const GateType t = netlist.gate(id).type;
    if (isSourceType(t)) continue;
    pool.push_back(id);
  }
  Xoroshiro128 rng(seed ^ 0x0be5'0be5ULL);
  // Partial Fisher-Yates: the first min(count, n) entries are a uniform
  // distinct sample.
  const std::size_t take = std::min(count, pool.size());
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.nextBelow(pool.size() - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(take);
  return pool;
}

FaultResponse simulateOpen(const FaultSimulator& simulator, GateId site) {
  const Netlist& netlist = simulator.netlist();
  SCANDIAG_REQUIRE(site < netlist.gateCount(), "stuck-open site out of range");
  SCANDIAG_REQUIRE(!isSourceType(netlist.gate(site).type),
                   "stuck-open sites must be combinational gate outputs");
  const std::size_t numPatterns = simulator.patterns().numPatterns();

  const FaultResponse sa0 = simulator.simulate({site, FaultSite::kOutputPin, false});
  const FaultResponse sa1 = simulator.simulate({site, FaultSite::kOutputPin, true});

  // retained.test(t): the floating node holds 1 during pattern t (= good
  // value of the site at pattern t-1; pattern 0 starts discharged).
  BitVector retained(numPatterns);
  for (std::size_t t = 1; t < numPatterns; ++t) {
    const std::size_t prev = t - 1;
    const SimWord word = simulator.goodValue(site, prev / 64);
    if ((word >> (prev % 64)) & 1u) retained.set(t);
  }

  // Per failing cell, select sa1's error bits where the node retained 1 and
  // sa0's where it retained 0.
  std::map<std::size_t, const BitVector*> streams0, streams1;
  for (std::size_t i = 0; i < sa0.failingCellOrdinals.size(); ++i) {
    streams0[sa0.failingCellOrdinals[i]] = &sa0.errorStreams[i];
  }
  for (std::size_t i = 0; i < sa1.failingCellOrdinals.size(); ++i) {
    streams1[sa1.failingCellOrdinals[i]] = &sa1.errorStreams[i];
  }

  FaultResponse out;
  out.fault = FaultSite{site, FaultSite::kOutputPin, false};
  out.failingCells = BitVector(std::max(sa0.failingCells.size(), sa1.failingCells.size()));
  std::map<std::size_t, const BitVector*>::const_iterator it0 = streams0.begin();
  std::map<std::size_t, const BitVector*>::const_iterator it1 = streams1.begin();
  while (it0 != streams0.end() || it1 != streams1.end()) {
    std::size_t ordinal;
    const BitVector* s0 = nullptr;
    const BitVector* s1 = nullptr;
    if (it1 == streams1.end() || (it0 != streams0.end() && it0->first < it1->first)) {
      ordinal = it0->first;
      s0 = it0->second;
      ++it0;
    } else if (it0 == streams0.end() || it1->first < it0->first) {
      ordinal = it1->first;
      s1 = it1->second;
      ++it1;
    } else {
      ordinal = it0->first;
      s0 = it0->second;
      s1 = it1->second;
      ++it0;
      ++it1;
    }
    BitVector merged(numPatterns);
    for (std::size_t t = 0; t < numPatterns; ++t) {
      const BitVector* pick = retained.test(t) ? s1 : s0;
      if (pick != nullptr && pick->test(t)) merged.set(t);
    }
    if (merged.none()) continue;
    out.failingCells.set(ordinal);
    out.failingCellOrdinals.push_back(ordinal);
    out.errorStreams.push_back(std::move(merged));
  }
  return out;
}

}  // namespace scandiag
