// Fault-coverage accounting for the BIST pattern set.
//
// Standard DFT bookkeeping on top of the fault simulator: which faults the
// applied patterns detect (at scan cells, at primary outputs, or both), and
// the cumulative coverage curve over the pattern sequence — the curve that
// justifies the paper's 128/200-pattern session lengths (pseudorandom
// coverage saturates quickly on random-pattern-testable logic, so longer
// sessions buy diagnosis data, not detection).
#pragma once

#include <vector>

#include "sim/fault_simulator.hpp"

namespace scandiag {

struct CoverageReport {
  std::size_t totalFaults = 0;
  /// Detected by at least one scan-cell capture error (the diagnosable kind).
  std::size_t scanDetected = 0;
  double scanCoverage() const {
    return totalFaults ? static_cast<double>(scanDetected) / static_cast<double>(totalFaults)
                       : 0.0;
  }
};

/// Coverage of `faults` under the simulator's pattern set.
CoverageReport measureCoverage(const FaultSimulator& simulator,
                               const std::vector<FaultSite>& faults);

/// Cumulative scan-detection counts after each pattern-count checkpoint:
/// result[i] = number of `faults` whose first scan error occurs at a pattern
/// index < checkpoints[i]. Checkpoints must be ascending.
std::vector<std::size_t> coverageCurve(const FaultSimulator& simulator,
                                       const std::vector<FaultSite>& faults,
                                       const std::vector<std::size_t>& checkpoints);

/// Pattern index of the first scan error of a response, or npos if none.
std::size_t firstDetectingPattern(const FaultResponse& response);

}  // namespace scandiag
