#include "sim/fault_list.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace scandiag {

namespace {

/// True if the branch fault (type, stuckAt) on an input pin is equivalent to
/// a stem fault of the same gate and should be dropped when collapsing.
bool branchCollapses(GateType type, bool stuckAt) {
  switch (type) {
    case GateType::And:
    case GateType::Nand:
      return stuckAt == false;  // controlling value 0
    case GateType::Or:
    case GateType::Nor:
      return stuckAt == true;  // controlling value 1
    case GateType::Buf:
    case GateType::Not:
      return true;  // single-input: both input faults map to output faults
    default:
      return false;  // XOR/XNOR/DFF: no controlling value
  }
}

std::vector<FaultSite> enumerateSites(const Netlist& netlist, bool collapse) {
  std::vector<FaultSite> faults;
  const auto& fanouts = netlist.fanouts();
  for (GateId id = 0; id < netlist.gateCount(); ++id) {
    const Gate& g = netlist.gate(id);
    if (g.type == GateType::Const0 || g.type == GateType::Const1) continue;
    // Stem faults. A stem that drives nothing is unobservable; skip it so the
    // sampler never wastes budget on structurally undetectable faults.
    const bool observedStem = !fanouts[id].empty() ||
                              std::find(netlist.outputs().begin(), netlist.outputs().end(), id) !=
                                  netlist.outputs().end();
    if (observedStem) {
      faults.push_back({id, FaultSite::kOutputPin, false});
      faults.push_back({id, FaultSite::kOutputPin, true});
    }
    // Branch faults where the driver fans out.
    for (std::size_t k = 0; k < g.fanins.size(); ++k) {
      const GateId driver = g.fanins[k];
      SCANDIAG_REQUIRE(driver != kInvalidGate, "dangling fanin during fault enumeration");
      if (fanouts[driver].size() <= 1) continue;
      for (bool sa : {false, true}) {
        if (collapse && branchCollapses(g.type, sa)) continue;
        faults.push_back({id, static_cast<int>(k), sa});
      }
    }
  }
  return faults;
}

}  // namespace

FaultList::FaultList(std::vector<FaultSite> faults) : faults_(std::move(faults)) {}

FaultList FaultList::enumerateCollapsed(const Netlist& netlist) {
  return FaultList(enumerateSites(netlist, /*collapse=*/true));
}

FaultList FaultList::enumerateAll(const Netlist& netlist) {
  return FaultList(enumerateSites(netlist, /*collapse=*/false));
}

std::vector<FaultSite> FaultList::sample(std::size_t n, std::uint64_t seed) const {
  std::vector<FaultSite> pool = faults_;
  Xoroshiro128 rng(seed);
  // Partial Fisher-Yates: the first min(n, size) entries become the sample.
  const std::size_t take = std::min(n, pool.size());
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t j = i + rng.nextBelow(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(take);
  return pool;
}

}  // namespace scandiag
