#include "sim/fault_list.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace scandiag {

namespace {

/// True if the branch fault (type, stuckAt) on an input pin is equivalent to
/// a stem fault of the same gate and should be dropped when collapsing.
bool branchCollapses(GateType type, bool stuckAt) {
  switch (type) {
    case GateType::And:
    case GateType::Nand:
      return stuckAt == false;  // controlling value 0
    case GateType::Or:
    case GateType::Nor:
      return stuckAt == true;  // controlling value 1
    case GateType::Buf:
    case GateType::Not:
      return true;  // single-input: both input faults map to output faults
    default:
      return false;  // XOR/XNOR/DFF: no controlling value
  }
}

std::vector<FaultSite> enumerateSites(const Netlist& netlist, bool collapse) {
  std::vector<FaultSite> faults;
  FaultEnumerator en(netlist, collapse);
  while (const std::optional<FaultSite> site = en.next()) faults.push_back(*site);
  return faults;
}

}  // namespace

FaultEnumerator::FaultEnumerator(const Netlist& netlist, bool collapse)
    : netlist_(&netlist), collapse_(collapse) {
  netlist.fanouts();  // build the (netlist-owned) fanout index up front
}

std::optional<FaultSite> FaultEnumerator::next() {
  const Netlist& netlist = *netlist_;
  const auto& fanouts = netlist.fanouts();
  while (gate_ < netlist.gateCount()) {
    const Gate& g = netlist.gate(gate_);
    if (g.type == GateType::Const0 || g.type == GateType::Const1) {
      ++gate_;
      continue;
    }
    // Stem faults. A stem that drives nothing is unobservable; skip it so the
    // sampler never wastes budget on structurally undetectable faults.
    if (stemPhase_ < 2) {
      const bool observedStem =
          !fanouts[gate_].empty() ||
          std::find(netlist.outputs().begin(), netlist.outputs().end(), gate_) !=
              netlist.outputs().end();
      if (!observedStem) {
        stemPhase_ = 2;
      } else {
        const bool sa = stemPhase_ == 1;
        ++stemPhase_;
        ++yielded_;
        return FaultSite{gate_, FaultSite::kOutputPin, sa};
      }
    }
    // Branch faults where the driver fans out.
    while (pin_ < g.fanins.size()) {
      const GateId driver = g.fanins[pin_];
      SCANDIAG_REQUIRE(driver != kInvalidGate, "dangling fanin during fault enumeration");
      if (fanouts[driver].size() <= 1) {
        ++pin_;
        pinPhase_ = 0;
        continue;
      }
      while (pinPhase_ < 2) {
        const bool sa = pinPhase_ == 1;
        ++pinPhase_;
        if (collapse_ && branchCollapses(g.type, sa)) continue;
        ++yielded_;
        return FaultSite{gate_, static_cast<int>(pin_), sa};
      }
      ++pin_;
      pinPhase_ = 0;
    }
    ++gate_;
    stemPhase_ = 0;
    pin_ = 0;
    pinPhase_ = 0;
  }
  return std::nullopt;
}

FaultList::FaultList(std::vector<FaultSite> faults) : faults_(std::move(faults)) {}

FaultList FaultList::enumerateCollapsed(const Netlist& netlist) {
  return FaultList(enumerateSites(netlist, /*collapse=*/true));
}

FaultList FaultList::enumerateAll(const Netlist& netlist) {
  return FaultList(enumerateSites(netlist, /*collapse=*/false));
}

std::vector<FaultSite> FaultList::sample(std::size_t n, std::uint64_t seed) const {
  std::vector<FaultSite> pool = faults_;
  Xoroshiro128 rng(seed);
  // Partial Fisher-Yates: the first min(n, size) entries become the sample.
  const std::size_t take = std::min(n, pool.size());
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t j = i + rng.nextBelow(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(take);
  return pool;
}

}  // namespace scandiag
