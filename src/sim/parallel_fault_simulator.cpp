#include "sim/parallel_fault_simulator.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace scandiag {

ParallelFaultSimulator::ParallelFaultSimulator(const Netlist& netlist,
                                               const PatternSet& patterns)
    : netlist_(&netlist), patterns_(&patterns), sim_(netlist) {
  obs::PhaseScope phase(obs::Phase::GoodMachineSim);
  const std::size_t words = patterns.wordCount();
  good_.assign(words, std::vector<SimWord>(netlist.gateCount(), 0));
  for (std::size_t w = 0; w < words; ++w) {
    for (GateId id = 0; id < netlist.gateCount(); ++id) {
      if (patterns.isSource(id)) good_[w][id] = patterns.word(id, w);
    }
    sim_.evaluate(good_[w]);
  }
}

SimWord ParallelFaultSimulator::detectBatch(const std::vector<FaultSite>& faults,
                                            std::size_t base, BatchScratch& scratch) const {
  const Netlist& nl = *netlist_;
  const std::size_t numPatterns = patterns_->numPatterns();
  const std::size_t lanes = std::min<std::size_t>(64, faults.size() - base);
  obs::count(obs::Counter::FaultsGraded, lanes);
  obs::PhaseScope phase(obs::Phase::FaultySim);

  // Per-gate lane injection masks for this batch (worker-owned scratch; the
  // masks arrive all-zero and are re-zeroed on exit). Output faults force the
  // lane bit after evaluation; pin faults (rare per gate) are patched by
  // scalar re-evaluation of the owning gate's lane.
  std::vector<SimWord>& force0 = scratch.force0;
  std::vector<SimWord>& force1 = scratch.force1;
  std::vector<std::pair<GateId, std::size_t>>& pinLanes = scratch.pinLanes;
  std::vector<std::uint8_t>& hasPinLane = scratch.hasPinLane;
  pinLanes.clear();
  SimWord laneAlive = lanes == 64 ? ~SimWord{0} : ((SimWord{1} << lanes) - 1);
  for (std::size_t l = 0; l < lanes; ++l) {
    const FaultSite& f = faults[base + l];
    SCANDIAG_REQUIRE(f.gate < nl.gateCount(), "fault site out of range");
    if (f.isOutputFault()) {
      (f.stuckAt ? force1 : force0)[f.gate] |= SimWord{1} << l;
    } else {
      pinLanes.push_back({f.gate, l});
      hasPinLane[f.gate] = 1;
    }
  }

  std::vector<SimWord>& values = scratch.values;
  SimWord detectedMask = 0;
  for (std::size_t t = 0; t < numPatterns && (detectedMask & laneAlive) != laneAlive;
       ++t) {
    const std::size_t w = t / 64;
    const SimWord bit = SimWord{1} << (t % 64);

    // Sources broadcast the pattern bit to every lane, then output faults
    // on sources are forced.
    for (GateId id = 0; id < nl.gateCount(); ++id) {
      if (patterns_->isSource(id)) {
        values[id] = (good_[w][id] & bit) ? ~SimWord{0} : SimWord{0};
        values[id] = (values[id] & ~force0[id] & ~force1[id]) | force1[id];
      } else if (nl.gate(id).type == GateType::Const0) {
        values[id] = force1[id];  // constant 0 except stuck-at-1 lanes
      } else if (nl.gate(id).type == GateType::Const1) {
        values[id] = ~force0[id];
      }
    }
    for (GateId id : sim_.levelization().order) {
      SimWord v = sim_.evalGate(id, values);
      // Pin-fault lanes: recompute this gate's bit with the pin forced.
      if (hasPinLane[id]) for (const auto& [owner, lane] : pinLanes) {
        if (owner != id) continue;
        const FaultSite& f = faults[base + lane];
        if (nl.gate(id).type == GateType::Dff) continue;  // handled at capture
        const GateId driver = nl.gate(id).fanins[f.pin];
        const SimWord saved = values[driver];
        values[driver] = f.stuckAt ? ~SimWord{0} : SimWord{0};
        const SimWord patched = sim_.evalGate(id, values);
        values[driver] = saved;
        v = (v & ~(SimWord{1} << lane)) | (patched & (SimWord{1} << lane));
      }
      v = (v & ~force0[id] & ~force1[id]) | force1[id];
      values[id] = v;
    }

    // Capture comparison against the good machine.
    for (GateId dff : nl.dffs()) {
      const GateId driver = nl.gate(dff).fanins[0];
      const SimWord goodBit = (good_[w][driver] & bit) ? ~SimWord{0} : SimWord{0};
      SimWord capture = values[driver];
      // DFF D-pin faults force the captured value on their lane.
      if (hasPinLane[dff]) for (const auto& [owner, lane] : pinLanes) {
        if (owner != dff) continue;
        const FaultSite& f = faults[base + lane];
        capture = (capture & ~(SimWord{1} << lane)) |
                  ((f.stuckAt ? ~SimWord{0} : SimWord{0}) & (SimWord{1} << lane));
      }
      detectedMask |= (capture ^ goodBit) & laneAlive;
    }
  }

  // Re-zero exactly the per-gate masks this batch set, so the scratch can be
  // handed to the next batch without an O(gateCount) clear.
  for (std::size_t l = 0; l < lanes; ++l) {
    const GateId g = faults[base + l].gate;
    force0[g] = 0;
    force1[g] = 0;
    hasPinLane[g] = 0;
  }
  return detectedMask & laneAlive;
}

std::vector<bool> ParallelFaultSimulator::detectFaults(
    const std::vector<FaultSite>& faults, const RunControl& control) const {
  // Batches are independent (each reads only the shared good machine), so
  // they fan out across the pool; each batch owns one word of `masks`, and
  // the bit-packed vector<bool> is filled serially afterwards. Batch results
  // do not depend on scheduling, so detection output is thread-count
  // invariant.
  const std::size_t numBatches = (faults.size() + 63) / 64;
  std::vector<SimWord> masks(numBatches, 0);
  globalPool().parallelForRange(numBatches, [&](std::size_t begin, std::size_t end) {
    // One scratch per worker chunk: the O(gateCount) buffers are allocated
    // once here and reused across every batch of the chunk.
    BatchScratch scratch(netlist_->gateCount());
    // Stage the chunk's result words locally and copy out once: workers then
    // never store into `masks` words that share a cache line with a
    // neighboring chunk's while that neighbor is still running.
    std::vector<SimWord> staged(end - begin, 0);
    for (std::size_t batch = begin; batch < end; ++batch) {
      control.throwIfStopped();
      staged[batch - begin] = detectBatch(faults, batch * 64, scratch);
    }
    std::copy(staged.begin(), staged.end(), masks.begin() + static_cast<std::ptrdiff_t>(begin));
  });
  std::vector<bool> detected(faults.size(), false);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    detected[i] = (masks[i / 64] >> (i % 64)) & 1u;
  }
  return detected;
}

std::size_t ParallelFaultSimulator::countDetected(const std::vector<FaultSite>& faults) const {
  const std::vector<bool> d = detectFaults(faults);
  return static_cast<std::size_t>(std::count(d.begin(), d.end(), true));
}

}  // namespace scandiag
