#include "sim/fault_coverage.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace scandiag {

CoverageReport measureCoverage(const FaultSimulator& simulator,
                               const std::vector<FaultSite>& faults) {
  CoverageReport report;
  report.totalFaults = faults.size();
  for (const FaultSite& f : faults) {
    if (simulator.simulate(f).detected()) ++report.scanDetected;
  }
  return report;
}

std::size_t firstDetectingPattern(const FaultResponse& response) {
  std::size_t first = BitVector::npos;
  for (const BitVector& stream : response.errorStreams) {
    first = std::min(first, stream.findFirst());
  }
  return first;
}

std::vector<std::size_t> coverageCurve(const FaultSimulator& simulator,
                                       const std::vector<FaultSite>& faults,
                                       const std::vector<std::size_t>& checkpoints) {
  SCANDIAG_REQUIRE(std::is_sorted(checkpoints.begin(), checkpoints.end()),
                   "checkpoints must be ascending");
  std::vector<std::size_t> detectedAt;
  detectedAt.reserve(faults.size());
  for (const FaultSite& f : faults) {
    const FaultResponse r = simulator.simulate(f);
    if (r.detected()) detectedAt.push_back(firstDetectingPattern(r));
  }
  std::sort(detectedAt.begin(), detectedAt.end());
  std::vector<std::size_t> curve;
  curve.reserve(checkpoints.size());
  for (std::size_t cp : checkpoints) {
    curve.push_back(static_cast<std::size_t>(
        std::lower_bound(detectedAt.begin(), detectedAt.end(), cp) - detectedAt.begin()));
  }
  return curve;
}

}  // namespace scandiag
