// Stuck-at fault simulation for full-scan scan-BIST.
//
// Test protocol per pattern (STUMPS-style): the PRPG loads a pseudorandom
// state into every scan cell and drives pseudorandom values on the primary
// inputs; the circuit runs one functional capture cycle; each DFF captures
// its D value, which is then shifted out through the response compactor.
// Consequently every pattern is an independent combinational evaluation, and
// a fault's entire observable effect on the scan side is the set of (cell,
// pattern) pairs whose captured value differs from the fault-free capture.
//
// FaultResponse records exactly that: the failing cells and, per failing
// cell, its pattern-indexed error stream. Everything downstream (sessions,
// partitions, signatures, pruning, DR) is computed from FaultResponses
// without touching the netlist again — which is what makes sweeping dozens
// of diagnosis configurations over one fault-simulation pass cheap.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "common/bitvector.hpp"
#include "sim/fault_list.hpp"
#include "sim/logic_simulator.hpp"

namespace scandiag {

/// Pseudorandom stimulus for every source gate (PIs and scan-loaded DFFs),
/// one bit per (source, pattern).
class PatternSet {
 public:
  PatternSet(const Netlist& netlist, std::size_t numPatterns);

  std::size_t numPatterns() const { return numPatterns_; }
  std::size_t wordCount() const { return (numPatterns_ + 63) / 64; }

  bool isSource(GateId id) const { return !streams_[id].empty(); }
  const BitVector& stream(GateId id) const;
  BitVector& stream(GateId id);

  /// 64-pattern slice for simulation; patterns beyond numPatterns() are 0.
  SimWord word(GateId id, std::size_t w) const;

 private:
  std::size_t numPatterns_;
  std::vector<BitVector> streams_;  // empty for non-source gates
};

struct FaultResponse {
  FaultSite fault;
  /// failingCells.test(k): DFF ordinal k captured at least one error.
  BitVector failingCells;
  /// Parallel arrays: ordinal + pattern-indexed error stream per failing cell.
  std::vector<std::size_t> failingCellOrdinals;
  std::vector<BitVector> errorStreams;

  bool detected() const { return !failingCellOrdinals.empty(); }
  std::size_t failingCellCount() const { return failingCellOrdinals.size(); }
};

/// Thread ownership: one FaultSimulator instance is owned by one thread at a
/// time. simulate()/simulateAll()/collectDetected() reuse per-instance scratch
/// buffers (and briefly mutate the good-value store in place, restoring it
/// before returning), so concurrent calls on a *shared* instance are not
/// allowed — create one simulator per worker instead (cheap relative to a
/// batch of faults; this is what the SoC driver and ParallelFaultSimulator
/// do). The read-only accessors (goodValue/goodCaptures/...) observe the
/// fault-free state whenever no simulate() call is in flight.
class FaultSimulator {
 public:
  FaultSimulator(const Netlist& netlist, const PatternSet& patterns);

  const Netlist& netlist() const { return *netlist_; }
  const PatternSet& patterns() const { return *patterns_; }
  const LogicSimulator& simulator() const { return sim_; }

  /// Fault-free captured value of each DFF (by ordinal), per pattern.
  const std::vector<BitVector>& goodCaptures() const { return goodCaptures_; }

  /// Fault-free value word of any gate (pattern-per-bit), for extensions that
  /// re-evaluate against the good machine (e.g. bridging faults).
  SimWord goodValue(GateId id, std::size_t word) const { return goodValues_.at(word).at(id); }
  /// Complete good evaluation of one 64-pattern batch.
  const std::vector<SimWord>& goodBatch(std::size_t word) const { return goodValues_.at(word); }

  /// Hot path: cone-cached, copy-free (save/evaluate/restore touches only the
  /// fault cone's gates instead of copying the whole good-value vector per
  /// 64-pattern word). Output is bit-identical to simulateReference().
  FaultResponse simulate(const FaultSite& fault) const;
  std::vector<FaultResponse> simulateAll(const std::vector<FaultSite>& faults) const;

  /// Reference implementation: recomputes the cone and copies the full
  /// good-value vector per word (the pre-cache algorithm). Kept as the parity
  /// oracle for tests and the before/after baseline in bench_perf; records no
  /// observability counters so golden counter sections stay cache-agnostic.
  FaultResponse simulateReference(const FaultSite& fault) const;

  /// Simulates `candidates` in order, keeping only detected faults, until
  /// `target` responses are collected (or candidates run out). This is the
  /// paper's "inject 500 single stuck-at faults" step with the convention of
  /// DESIGN.md §5 (undetected faults contribute nothing to DR).
  std::vector<FaultResponse> collectDetected(const std::vector<FaultSite>& candidates,
                                             std::size_t target) const;

 private:
  /// Per-gate cone data, computed once per site and reused by every fault on
  /// that gate (output SA0/SA1 and all pin faults share the output cone).
  /// call_once keeps lazy initialization safe even under (unsupported but
  /// conceivable) concurrent reads; after the first build the entry is
  /// immutable.
  struct ConeEntry {
    std::once_flag once;
    FaultCone cone;
    /// Site is a source gate: evaluateFaulty may force values[site], which is
    /// outside cone.gates, so save/restore needs one extra slot for it.
    bool sourceSite = false;
    std::vector<std::size_t> ordinals;    // reachable DFF ordinals, ascending
    std::vector<GateId> drivers;          // D-input driver per reachable DFF
    std::vector<std::size_t> driverSlot;  // save-slot index of drivers[i]
  };

  /// Reusable per-instance buffers for the save/evaluate/restore hot path;
  /// capacity persists across simulate() calls so the steady state allocates
  /// nothing.
  struct SimScratch {
    std::vector<SimWord> saved;     // [save slot] good values of touched gates
    std::vector<SimWord> errWords;  // [cone cell i * words + w] error words
  };

  const ConeEntry& coneEntry(GateId site) const;
  /// Shared handling of a branch fault on a DFF D pin (capture-side only).
  FaultResponse dffPinResponse(const FaultSite& fault) const;

  const Netlist* netlist_;
  const PatternSet* patterns_;
  LogicSimulator sim_;
  // Mutable: simulate() evaluates faulty values in place on the good-value
  // store and restores them before returning (see the class comment).
  mutable std::vector<std::vector<SimWord>> goodValues_;  // [word][gate]
  std::vector<BitVector> goodCaptures_;                   // [dff ordinal][pattern]
  std::vector<std::size_t> dffOrdinal_;                   // gate id -> ordinal (or npos)
  mutable std::unique_ptr<ConeEntry[]> coneCache_;        // [gate id]
  mutable SimScratch scratch_;
};

}  // namespace scandiag
