// Stuck-open (transistor-open) faults — the third defect model.
//
// A broken source/drain connection leaves the faulted net floating, and a
// floating CMOS node *retains* its previous charge for a while. Under the
// scan-BIST protocol the node's "previous" value is whatever the fault-free
// machine drove onto it during the preceding pattern — so a stuck-open is a
// pattern-pair fault: pattern t misbehaves as stuck-at-1 when the good value
// at pattern t-1 was 1, and as stuck-at-0 when it was 0 (pattern 0 starts
// from a discharged node, i.e. stuck-at-0).
//
// That retention semantics composes from the two stuck-at simulations of the
// same site — both on FaultSimulator's cone-restricted fast path — by
// selecting, per pattern, which polarity's error stream applies. Downstream
// diagnosis consumes the resulting FaultResponse unchanged.
#pragma once

#include <vector>

#include "sim/fault_simulator.hpp"

namespace scandiag {

/// Deterministically samples up to `count` distinct gate outputs as
/// stuck-open sites (combinational gates only: a floating PI/DFF output has
/// no defined previous-pattern charge under this model).
std::vector<GateId> enumerateOpenSites(const Netlist& netlist, std::size_t count,
                                       std::uint64_t seed);

/// Simulates the retention fault at `site` against the simulator's good
/// machine and pattern set. The returned response's `fault` field carries the
/// site with stuckAt = false, for reporting only.
FaultResponse simulateOpen(const FaultSimulator& simulator, GateId site);

}  // namespace scandiag
