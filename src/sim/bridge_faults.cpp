#include "sim/bridge_faults.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "netlist/cone_analysis.hpp"

namespace scandiag {

std::string_view bridgeKindName(BridgeKind kind) {
  switch (kind) {
    case BridgeKind::WiredAnd:
      return "wired-AND";
    case BridgeKind::WiredOr:
      return "wired-OR";
    case BridgeKind::ADominatesB:
      return "a-dominates-b";
    case BridgeKind::BDominatesA:
      return "b-dominates-a";
  }
  throw std::logic_error("unknown BridgeKind");
}

bool isFeedbackFree(const Netlist& netlist, GateId a, GateId b) {
  // Forward BFS over combinational fanout from `from`; true if `to` reached.
  const auto reaches = [&](GateId from, GateId to) {
    std::vector<bool> visited(netlist.gateCount(), false);
    std::vector<GateId> stack{from};
    visited[from] = true;
    const auto& fanouts = netlist.fanouts();
    while (!stack.empty()) {
      const GateId g = stack.back();
      stack.pop_back();
      for (GateId user : fanouts[g]) {
        if (netlist.gate(user).type == GateType::Dff) continue;  // sequential edge
        if (user == to) return true;
        if (visited[user]) continue;
        visited[user] = true;
        stack.push_back(user);
      }
    }
    return false;
  };
  return !reaches(a, b) && !reaches(b, a);
}

std::vector<BridgeFault> enumerateBridgeCandidates(const Netlist& netlist, std::size_t count,
                                                   std::uint64_t seed) {
  SCANDIAG_REQUIRE(netlist.gateCount() >= 2, "need at least two nets to bridge");
  Xoroshiro128 rng(seed);
  std::vector<BridgeFault> bridges;
  const BridgeKind kinds[] = {BridgeKind::WiredAnd, BridgeKind::WiredOr,
                              BridgeKind::ADominatesB, BridgeKind::BDominatesA};
  std::size_t guard = 0;
  while (bridges.size() < count && ++guard < count * 200 + 1000) {
    const GateId a = static_cast<GateId>(rng.nextBelow(netlist.gateCount()));
    // Nearby ids are structurally nearby under the generator's locality.
    const std::size_t span = std::max<std::size_t>(netlist.gateCount() / 50, 4);
    const std::int64_t offset =
        static_cast<std::int64_t>(rng.nextBelow(2 * span + 1)) - static_cast<std::int64_t>(span);
    const std::int64_t bi = static_cast<std::int64_t>(a) + offset;
    if (bi < 0 || bi >= static_cast<std::int64_t>(netlist.gateCount())) continue;
    const GateId b = static_cast<GateId>(bi);
    if (a == b) continue;
    const GateType ta = netlist.gate(a).type, tb = netlist.gate(b).type;
    if (ta == GateType::Const0 || ta == GateType::Const1 || tb == GateType::Const0 ||
        tb == GateType::Const1)
      continue;
    if (!isFeedbackFree(netlist, a, b)) continue;
    bridges.push_back(BridgeFault{a, b, kinds[bridges.size() % 4]});
  }
  return bridges;
}

FaultResponse simulateBridge(const FaultSimulator& simulator, const BridgeFault& bridge) {
  const Netlist& nl = simulator.netlist();
  SCANDIAG_REQUIRE(bridge.a < nl.gateCount() && bridge.b < nl.gateCount(),
                   "bridge net out of range");
  SCANDIAG_REQUIRE(bridge.a != bridge.b, "bridge needs two distinct nets");
  const LogicSimulator& sim = simulator.simulator();
  const std::size_t numPatterns = simulator.patterns().numPatterns();
  const std::size_t words = simulator.patterns().wordCount();

  // Union of the two cones, evaluation-ordered.
  const FaultCone coneA = computeCone(nl, sim.levelization(), bridge.a);
  const FaultCone coneB = computeCone(nl, sim.levelization(), bridge.b);
  FaultCone cone;
  cone.gates = coneA.gates;
  cone.gates.insert(cone.gates.end(), coneB.gates.begin(), coneB.gates.end());
  const auto& level = sim.levelization().level;
  std::sort(cone.gates.begin(), cone.gates.end(), [&](GateId x, GateId y) {
    return level[x] != level[y] ? level[x] < level[y] : x < y;
  });
  cone.gates.erase(std::unique(cone.gates.begin(), cone.gates.end()), cone.gates.end());
  cone.reachableDffs = coneA.reachableDffs | coneB.reachableDffs;

  FaultResponse resp;
  resp.fault = FaultSite{bridge.a, FaultSite::kOutputPin, false};  // reporting only
  resp.failingCells = BitVector(nl.dffs().size());
  if (cone.reachableDffs.none()) return resp;

  const std::vector<std::size_t> coneOrdinals = cone.reachableDffs.toIndices();
  std::vector<BitVector> errs(coneOrdinals.size(), BitVector(numPatterns));
  std::vector<SimWord> values;
  for (std::size_t w = 0; w < words; ++w) {
    values = simulator.goodBatch(w);
    // Bridged net values from the (independent) driven values. No feedback:
    // neither net's driven value depends on the other, so one application is
    // the fixed point.
    const SimWord va = values[bridge.a], vb = values[bridge.b];
    SimWord na = va, nb = vb;
    switch (bridge.kind) {
      case BridgeKind::WiredAnd:
        na = nb = va & vb;
        break;
      case BridgeKind::WiredOr:
        na = nb = va | vb;
        break;
      case BridgeKind::ADominatesB:
        nb = va;
        break;
      case BridgeKind::BDominatesA:
        na = vb;
        break;
    }
    values[bridge.a] = na;
    values[bridge.b] = nb;
    for (GateId id : cone.gates) {
      if (id == bridge.a || id == bridge.b) continue;  // bridged values stay forced
      values[id] = sim.evalGate(id, values);
    }
    for (std::size_t i = 0; i < coneOrdinals.size(); ++i) {
      const GateId driver = nl.gate(nl.dffs()[coneOrdinals[i]]).fanins[0];
      errs[i].setWord(w, values[driver] ^ simulator.goodValue(driver, w));
    }
  }
  for (std::size_t i = 0; i < coneOrdinals.size(); ++i) {
    if (errs[i].any()) {
      resp.failingCells.set(coneOrdinals[i]);
      resp.failingCellOrdinals.push_back(coneOrdinals[i]);
      resp.errorStreams.push_back(std::move(errs[i]));
    }
  }
  return resp;
}

}  // namespace scandiag
