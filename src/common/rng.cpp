#include "common/rng.hpp"

#include <bit>

#include "common/assert.hpp"

namespace scandiag {

namespace {
// splitmix64: expands one seed word into well-mixed state words.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Xoroshiro128::Xoroshiro128(std::uint64_t seed) {
  std::uint64_t sm = seed;
  s0_ = splitmix64(sm);
  s1_ = splitmix64(sm);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;  // all-zero state is a fixed point
}

std::uint64_t Xoroshiro128::next() {
  const std::uint64_t a = s0_;
  std::uint64_t b = s1_;
  const std::uint64_t result = std::rotl(a + b, 17) + a;
  b ^= a;
  s0_ = std::rotl(a, 49) ^ b ^ (b << 21);
  s1_ = std::rotl(b, 28);
  return result;
}

std::uint64_t Xoroshiro128::nextBelow(std::uint64_t bound) {
  SCANDIAG_REQUIRE(bound != 0, "bound must be nonzero");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  while (true) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Xoroshiro128::nextInRange(std::uint64_t lo, std::uint64_t hi) {
  SCANDIAG_REQUIRE(lo <= hi, "empty range");
  return lo + nextBelow(hi - lo + 1);
}

double Xoroshiro128::nextDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

}  // namespace scandiag
