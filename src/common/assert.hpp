// Lightweight contract checking used across scandiag.
//
// SCANDIAG_REQUIRE is for precondition violations that indicate caller bugs or
// malformed external input; it throws std::invalid_argument so library users
// can recover. SCANDIAG_ASSERT is for internal invariants; it throws
// std::logic_error because continuing past a broken invariant would produce
// silently wrong diagnosis data.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace scandiag {

[[noreturn]] inline void throwRequire(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throwAssert(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace scandiag

#define SCANDIAG_REQUIRE(cond, msg)                                     \
  do {                                                                  \
    if (!(cond)) ::scandiag::throwRequire(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define SCANDIAG_ASSERT(cond, msg)                                      \
  do {                                                                  \
    if (!(cond)) ::scandiag::throwAssert(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
