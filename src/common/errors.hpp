// Typed error hierarchy for external-input failures.
//
// The parsers (.bench netlists, .soc descriptions, tester session logs) face
// data produced outside this process — truncated uploads, corrupted tester
// dumps, hand-edited files. Every malformed input must surface as a typed
// exception carrying the source location, never as UB or silent acceptance,
// so callers (and scandiag_cli's exit-code mapping) can distinguish
//   * ParseError         — the bytes are wrong (carries a 1-based line),
//   * FileNotFoundError  — the path is wrong,
// from plain std::invalid_argument (caller misuse / usage errors).
// ParseError derives from std::invalid_argument so existing catch sites keep
// working; FileNotFoundError derives from std::runtime_error because the
// input itself was never inspected.
#pragma once

#include <stdexcept>
#include <string>

namespace scandiag {

class ParseError : public std::invalid_argument {
 public:
  /// `format` names the input kind ("session log", ".soc", ".bench");
  /// `line` is 1-based, 0 when the error is not tied to one line.
  ParseError(std::string format, int line, const std::string& message)
      : std::invalid_argument(compose(format, line, message)),
        format_(std::move(format)),
        line_(line) {}

  const std::string& format() const { return format_; }
  int line() const { return line_; }

 private:
  static std::string compose(const std::string& format, int line, const std::string& message) {
    std::string out = format + " parse error";
    if (line > 0) out += " at line " + std::to_string(line);
    out += ": " + message;
    return out;
  }

  std::string format_;
  int line_;
};

class FileNotFoundError : public std::runtime_error {
 public:
  explicit FileNotFoundError(const std::string& path)
      : std::runtime_error("cannot open file: " + path), path_(path) {}

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace scandiag
