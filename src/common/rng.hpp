// Deterministic pseudo-random number generation.
//
// All stochastic choices in scandiag (synthetic netlist construction, fault
// sampling) flow through Xoroshiro128pp seeded explicitly, so every experiment
// in EXPERIMENTS.md is reproducible bit-for-bit from its recorded seed.
// BIST-visible randomness (pattern generation, partition labels, interval
// lengths) does NOT use this class — it uses the hardware LFSR model in
// src/bist, exactly as the silicon would.
#pragma once

#include <cstdint>

namespace scandiag {

class Xoroshiro128 {
 public:
  explicit Xoroshiro128(std::uint64_t seed);

  std::uint64_t next();

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t nextBelow(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t nextInRange(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double nextDouble();

  bool nextBool() { return next() >> 63; }

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

}  // namespace scandiag
