#include "common/json.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace scandiag {

JsonWriter::JsonWriter(std::ostream& out, bool pretty) : out_(&out), pretty_(pretty) {}

JsonWriter::~JsonWriter() = default;

void JsonWriter::newline() {
  if (!pretty_) return;
  *out_ << '\n';
  for (std::size_t i = 0; i < scopes_.size(); ++i) *out_ << "  ";
}

void JsonWriter::beforeValue() {
  if (scopes_.empty()) return;
  if (scopes_.back() == Scope::Object) {
    SCANDIAG_REQUIRE(keyPending_, "JSON object member needs a key()");
    keyPending_ = false;
    return;
  }
  if (hasItems_.back()) *out_ << ',';
  hasItems_.back() = true;
  newline();
}

JsonWriter& JsonWriter::key(const std::string& name) {
  SCANDIAG_REQUIRE(!scopes_.empty() && scopes_.back() == Scope::Object,
                   "key() outside an object");
  SCANDIAG_REQUIRE(!keyPending_, "two keys in a row");
  if (hasItems_.back()) *out_ << ',';
  hasItems_.back() = true;
  newline();
  writeEscaped(name);
  *out_ << (pretty_ ? ": " : ":");
  keyPending_ = true;
  return *this;
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  *out_ << '{';
  scopes_.push_back(Scope::Object);
  hasItems_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  SCANDIAG_REQUIRE(!scopes_.empty() && scopes_.back() == Scope::Object,
                   "endObject() without a matching beginObject()");
  SCANDIAG_REQUIRE(!keyPending_, "dangling key at endObject()");
  const bool had = hasItems_.back();
  scopes_.pop_back();
  hasItems_.pop_back();
  if (had) newline();
  *out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  *out_ << '[';
  scopes_.push_back(Scope::Array);
  hasItems_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  SCANDIAG_REQUIRE(!scopes_.empty() && scopes_.back() == Scope::Array,
                   "endArray() without a matching beginArray()");
  const bool had = hasItems_.back();
  scopes_.pop_back();
  hasItems_.pop_back();
  if (had) newline();
  *out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  beforeValue();
  writeEscaped(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  beforeValue();
  SCANDIAG_REQUIRE(std::isfinite(v), "JSON cannot represent NaN/Inf");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  beforeValue();
  *out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  beforeValue();
  *out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  beforeValue();
  *out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  beforeValue();
  *out_ << "null";
  return *this;
}

void JsonWriter::writeEscaped(const std::string& s) {
  *out_ << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out_ << "\\\"";
        break;
      case '\\':
        *out_ << "\\\\";
        break;
      case '\n':
        *out_ << "\\n";
        break;
      case '\t':
        *out_ << "\\t";
        break;
      case '\r':
        *out_ << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out_ << buf;
        } else {
          *out_ << c;
        }
    }
  }
  *out_ << '"';
}

}  // namespace scandiag
