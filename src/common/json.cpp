#include "common/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/assert.hpp"
#include "common/errors.hpp"

namespace scandiag {

JsonWriter::JsonWriter(std::ostream& out, bool pretty) : out_(&out), pretty_(pretty) {}

JsonWriter::~JsonWriter() = default;

void JsonWriter::newline() {
  if (!pretty_) return;
  *out_ << '\n';
  for (std::size_t i = 0; i < scopes_.size(); ++i) *out_ << "  ";
}

void JsonWriter::beforeValue() {
  if (scopes_.empty()) return;
  if (scopes_.back() == Scope::Object) {
    SCANDIAG_REQUIRE(keyPending_, "JSON object member needs a key()");
    keyPending_ = false;
    return;
  }
  if (hasItems_.back()) *out_ << ',';
  hasItems_.back() = true;
  newline();
}

JsonWriter& JsonWriter::key(const std::string& name) {
  SCANDIAG_REQUIRE(!scopes_.empty() && scopes_.back() == Scope::Object,
                   "key() outside an object");
  SCANDIAG_REQUIRE(!keyPending_, "two keys in a row");
  if (hasItems_.back()) *out_ << ',';
  hasItems_.back() = true;
  newline();
  writeEscaped(name);
  *out_ << (pretty_ ? ": " : ":");
  keyPending_ = true;
  return *this;
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  *out_ << '{';
  scopes_.push_back(Scope::Object);
  hasItems_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  SCANDIAG_REQUIRE(!scopes_.empty() && scopes_.back() == Scope::Object,
                   "endObject() without a matching beginObject()");
  SCANDIAG_REQUIRE(!keyPending_, "dangling key at endObject()");
  const bool had = hasItems_.back();
  scopes_.pop_back();
  hasItems_.pop_back();
  if (had) newline();
  *out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  *out_ << '[';
  scopes_.push_back(Scope::Array);
  hasItems_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  SCANDIAG_REQUIRE(!scopes_.empty() && scopes_.back() == Scope::Array,
                   "endArray() without a matching beginArray()");
  const bool had = hasItems_.back();
  scopes_.pop_back();
  hasItems_.pop_back();
  if (had) newline();
  *out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  beforeValue();
  writeEscaped(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  beforeValue();
  SCANDIAG_REQUIRE(std::isfinite(v), "JSON cannot represent NaN/Inf");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  beforeValue();
  *out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  beforeValue();
  *out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  beforeValue();
  *out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  beforeValue();
  *out_ << "null";
  return *this;
}

void JsonWriter::writeEscaped(const std::string& s) {
  *out_ << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out_ << "\\\"";
        break;
      case '\\':
        *out_ << "\\\\";
        break;
      case '\n':
        *out_ << "\\n";
        break;
      case '\t':
        *out_ << "\\t";
        break;
      case '\r':
        *out_ << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out_ << buf;
        } else {
          *out_ << c;
        }
    }
  }
  *out_ << '"';
}

// ---------------------------------------------------------------------------
// JsonValue

bool JsonValue::asBool() const {
  SCANDIAG_REQUIRE(kind_ == Kind::Bool, "JSON value is not a bool");
  return bool_;
}

double JsonValue::asDouble() const {
  SCANDIAG_REQUIRE(kind_ == Kind::Number, "JSON value is not a number");
  switch (numberRepr_) {
    case NumberRepr::Uint: return static_cast<double>(uint_);
    case NumberRepr::Int: return static_cast<double>(int_);
    case NumberRepr::Double: return double_;
  }
  return double_;
}

std::uint64_t JsonValue::asUint() const {
  SCANDIAG_REQUIRE(kind_ == Kind::Number, "JSON value is not a number");
  SCANDIAG_REQUIRE(numberRepr_ == NumberRepr::Uint,
                   "JSON number is not an unsigned integer");
  return uint_;
}

std::int64_t JsonValue::asInt() const {
  SCANDIAG_REQUIRE(kind_ == Kind::Number, "JSON value is not a number");
  if (numberRepr_ == NumberRepr::Int) return int_;
  SCANDIAG_REQUIRE(numberRepr_ == NumberRepr::Uint &&
                       uint_ <= static_cast<std::uint64_t>(INT64_MAX),
                   "JSON number does not fit in int64");
  return static_cast<std::int64_t>(uint_);
}

const std::string& JsonValue::asString() const {
  SCANDIAG_REQUIRE(kind_ == Kind::String, "JSON value is not a string");
  return string_;
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::Array) return items_.size();
  if (kind_ == Kind::Object) return members_.size();
  return 0;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  SCANDIAG_REQUIRE(kind_ == Kind::Array, "JSON value is not an array");
  SCANDIAG_REQUIRE(index < items_.size(), "JSON array index out of range");
  return items_[index];
}

bool JsonValue::has(const std::string& name) const {
  if (kind_ != Kind::Object) return false;
  for (const auto& [key, value] : members_) {
    if (key == name) return true;
  }
  return false;
}

const JsonValue& JsonValue::at(const std::string& name) const {
  SCANDIAG_REQUIRE(kind_ == Kind::Object, "JSON value is not an object");
  for (const auto& [key, value] : members_) {
    if (key == name) return value;
  }
  throw std::invalid_argument("JSON object has no member \"" + name + "\"");
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  SCANDIAG_REQUIRE(kind_ == Kind::Object, "JSON value is not an object");
  return members_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  SCANDIAG_REQUIRE(kind_ == Kind::Array, "JSON value is not an array");
  return items_;
}

JsonValue JsonValue::makeNull() { return JsonValue{}; }

JsonValue JsonValue::makeBool(bool v) {
  JsonValue out;
  out.kind_ = Kind::Bool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::makeUint(std::uint64_t v) {
  JsonValue out;
  out.kind_ = Kind::Number;
  out.numberRepr_ = NumberRepr::Uint;
  out.uint_ = v;
  return out;
}

JsonValue JsonValue::makeInt(std::int64_t v) {
  if (v >= 0) return makeUint(static_cast<std::uint64_t>(v));
  JsonValue out;
  out.kind_ = Kind::Number;
  out.numberRepr_ = NumberRepr::Int;
  out.int_ = v;
  return out;
}

JsonValue JsonValue::makeDouble(double v) {
  SCANDIAG_REQUIRE(std::isfinite(v), "JSON cannot represent NaN/Inf");
  JsonValue out;
  out.kind_ = Kind::Number;
  out.numberRepr_ = NumberRepr::Double;
  out.double_ = v;
  return out;
}

JsonValue JsonValue::makeString(std::string v) {
  JsonValue out;
  out.kind_ = Kind::String;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::makeArray(std::vector<JsonValue> items) {
  JsonValue out;
  out.kind_ = Kind::Array;
  out.items_ = std::move(items);
  return out;
}

JsonValue JsonValue::makeObject(std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue out;
  out.kind_ = Kind::Object;
  out.members_ = std::move(members);
  return out;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

constexpr std::size_t kMaxJsonDepth = 64;

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parseDocument() {
    skipWhitespace();
    JsonValue root = parseValue(0);
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing garbage after JSON document");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("json", line_, message);
  }

  bool atEnd() const { return pos_ >= text_.size(); }

  char peek() const {
    if (atEnd()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    if (c == '\n') ++line_;
    return c;
  }

  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }

  void skipWhitespace() {
    while (!atEnd()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return;
      take();
    }
  }

  void expectLiteral(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (atEnd() || take() != *p) fail(std::string("invalid literal, expected ") + literal);
    }
  }

  JsonValue parseValue(std::size_t depth) {
    if (depth > kMaxJsonDepth) fail("JSON nesting too deep");
    skipWhitespace();
    const char c = peek();
    switch (c) {
      case '{': return parseObject(depth);
      case '[': return parseArray(depth);
      case '"': return JsonValue::makeString(parseString());
      case 't':
        expectLiteral("true");
        return JsonValue::makeBool(true);
      case 'f':
        expectLiteral("false");
        return JsonValue::makeBool(false);
      case 'n':
        expectLiteral("null");
        return JsonValue::makeNull();
      default: return parseNumber();
    }
  }

  JsonValue parseObject(std::size_t depth) {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skipWhitespace();
    if (peek() == '}') {
      take();
      return JsonValue::makeObject(std::move(members));
    }
    for (;;) {
      skipWhitespace();
      if (peek() != '"') fail("object member key must be a string");
      std::string key = parseString();
      skipWhitespace();
      expect(':');
      members.emplace_back(std::move(key), parseValue(depth + 1));
      skipWhitespace();
      const char next = take();
      if (next == '}') return JsonValue::makeObject(std::move(members));
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parseArray(std::size_t depth) {
    expect('[');
    std::vector<JsonValue> items;
    skipWhitespace();
    if (peek() == ']') {
      take();
      return JsonValue::makeArray(std::move(items));
    }
    for (;;) {
      items.push_back(parseValue(depth + 1));
      skipWhitespace();
      const char next = take();
      if (next == ']') return JsonValue::makeArray(std::move(items));
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': appendUnicodeEscape(out); break;
        default: fail("invalid string escape");
      }
    }
  }

  unsigned parseHex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return code;
  }

  void appendUnicodeEscape(std::string& out) {
    unsigned code = parseHex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: a \uDCxx low surrogate must immediately follow, and
      // the pair decodes to one supplementary-plane code point.
      if (take() != '\\' || take() != 'u') fail("unpaired surrogate in \\u escape");
      const unsigned low = parseHex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate in \\u escape");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired surrogate in \\u escape");
    }
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    bool negative = false;
    if (peek() == '-') {
      negative = true;
      take();
    }
    if (atEnd() || !isDigit(peek())) fail("invalid number");
    if (peek() == '0') {
      take();
      if (!atEnd() && isDigit(text_[pos_])) fail("leading zero in number");
    } else {
      while (!atEnd() && isDigit(text_[pos_])) take();
    }
    bool isIntegral = true;
    if (!atEnd() && text_[pos_] == '.') {
      isIntegral = false;
      take();
      if (atEnd() || !isDigit(peek())) fail("digit required after decimal point");
      while (!atEnd() && isDigit(text_[pos_])) take();
    }
    if (!atEnd() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      isIntegral = false;
      take();
      if (!atEnd() && (text_[pos_] == '+' || text_[pos_] == '-')) take();
      if (atEnd() || !isDigit(peek())) fail("digit required in exponent");
      while (!atEnd() && isDigit(text_[pos_])) take();
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (isIntegral) {
      errno = 0;
      if (!negative) {
        const std::uint64_t v = std::strtoull(token.c_str(), nullptr, 10);
        if (errno == ERANGE) fail("unsigned integer out of range");
        return JsonValue::makeUint(v);
      }
      const std::int64_t v = std::strtoll(token.c_str(), nullptr, 10);
      if (errno == ERANGE) fail("integer out of range");
      return JsonValue::makeInt(v);
    }
    errno = 0;
    const double v = std::strtod(token.c_str(), nullptr);
    if (errno == ERANGE || !std::isfinite(v)) fail("number out of range");
    return JsonValue::makeDouble(v);
  }

  static bool isDigit(char c) { return c >= '0' && c <= '9'; }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

}  // namespace

JsonValue parseJson(const std::string& text) { return JsonParser(text).parseDocument(); }

}  // namespace scandiag
