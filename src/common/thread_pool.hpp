// Fixed-partition thread pool for the embarrassingly parallel per-fault loops.
//
// Design constraints, in order:
//
//  1. **Determinism.** Work is always split by *index*, never by arrival
//     order: parallelFor(n, fn) carves [0, n) into at most threadCount()
//     contiguous chunks, each chunk is executed by exactly one thread, and
//     the caller decides what to do with the indexed results. There is no
//     work stealing and no shared accumulator inside the pool, so a loop
//     whose body writes only results[i] produces bit-identical output for
//     every thread count — callers then reduce in index order (see
//     DiagnosisPipeline::evaluate). Per-index seeds/partition state derive
//     from the index, exactly as in the serial code.
//  2. **Thread count 1 is the serial code path.** A pool with one thread
//     spawns no workers; parallelFor degenerates to the plain `for` loop on
//     the calling thread and submit() runs inline. The parallel build is
//     therefore a strict superset of the serial one, not a replacement.
//  3. **Nested use never deadlocks.** A parallelFor issued from inside a
//     pool task runs inline on that worker (detected via a thread_local
//     flag). This is what lets evaluateSocDr parallelize across cores while
//     each core's DiagnosisPipeline::evaluate still calls parallelFor.
//  4. **Exceptions propagate.** The lowest-index chunk's exception is
//     rethrown on the calling thread (lowest-index so the error a caller
//     sees does not depend on thread scheduling); submit() carries
//     exceptions through its std::future. A throwing chunk never strands the
//     batch: completion is decremented by RAII, a queueing failure falls back
//     to inline execution, and an exception that escapes a raw task is caught
//     in the worker (keeping it alive for join) and rethrown on the next
//     submitting thread instead of std::terminate'ing the process.
//
// Thread count resolution: an explicit constructor argument wins; 0 defers
// to the SCANDIAG_THREADS environment variable; unset/0/garbage falls back
// to std::thread::hardware_concurrency(). globalPool() is the process-wide
// instance the experiment drivers use; setGlobalThreadCount() rebuilds it
// (call it from startup code — CLI flag, bench setup, test fixtures — not
// while work is in flight).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace scandiag {

/// SCANDIAG_THREADS if set to a positive integer, else hardware_concurrency
/// (never 0).
std::size_t defaultThreadCount();

/// True while the current thread is executing a pool task or parallelFor
/// chunk; nested parallel constructs run inline instead of re-entering the
/// queue.
bool insideParallelRegion();

class ThreadPool {
 public:
  /// numThreads == 0 resolves via defaultThreadCount().
  explicit ThreadPool(std::size_t numThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (workers + the calling thread). Always >= 1.
  std::size_t threadCount() const { return workers_.size() + 1; }

  /// Runs body(begin, end) over a fixed contiguous partition of [0, n) into
  /// at most threadCount() chunks. Blocks until every chunk finished; the
  /// calling thread executes chunk 0. Rethrows the lowest-index chunk's
  /// exception. Serial (inline) when threadCount() == 1, n <= 1, or called
  /// from inside another parallel region.
  void parallelForRange(std::size_t n,
                        const std::function<void(std::size_t, std::size_t)>& body);

  /// Element-wise convenience wrapper: fn(i) for each i in [0, n).
  template <typename Fn>
  void parallelFor(std::size_t n, Fn&& fn) {
    parallelForRange(n, [&fn](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }

  /// Schedules f() on a worker (inline when threadCount() == 1 or when
  /// called from inside a parallel region); the future carries the result
  /// or exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    post([task] { (*task)(); });
    return future;
  }

 private:
  void post(std::function<void()> task);
  void workerLoop(std::size_t lane);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable available_;
  std::vector<std::function<void()>> queue_;
  bool stopping_ = false;
  /// First exception that escaped a task on a worker (instead of killing the
  /// worker via std::terminate); rethrown by the next parallelForRange.
  std::exception_ptr escapedError_;
};

/// Process-wide pool shared by the experiment drivers. Built on first use
/// with defaultThreadCount() threads.
ThreadPool& globalPool();

/// Replaces the global pool with an `n`-thread one (0 = defaultThreadCount()).
/// Must not race with work submitted to the old pool.
void setGlobalThreadCount(std::size_t n);

}  // namespace scandiag
