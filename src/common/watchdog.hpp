// Cooperative cancellation + monotonic watchdog deadlines.
//
// Long-running drivers must degrade to a partial-but-valid result instead of
// hanging CI or dying without flushing their journal. Two mechanisms compose:
//
//  * **CancellationToken** — a lock-free flag that signal handlers (SIGINT/
//    SIGTERM) and the watchdog set, and that workers poll at fault-batch
//    granularity. Setting it is async-signal-safe (a relaxed atomic store of
//    a flag plus a pointer to a static-lifetime reason string).
//  * **Watchdog** — monotonic-clock (steady_clock) deadlines: one total
//    budget plus optional per-phase budgets (pattern-gen, fault-sim,
//    session-eval). There is no background thread; workers call poll() at
//    the same batch granularity, which compares now() against the active
//    deadline and trips the token (once) when exceeded. Trips count the
//    watchdog_cancels metric.
//
// RunControl bundles an optional token + watchdog into the single parameter
// drivers thread through DiagnosisPipeline / ParallelFaultSimulator /
// SocExperimentDriver. A default RunControl{} is fully inert: shouldStop()
// is two null checks, so un-instrumented runs stay bit-identical and free.
//
// Cancellation unwinds as OperationCancelled, thrown from the checkpoint
// (never mid-fault), so every journaled record is a completed fault and the
// journal is valid at the instant of interruption.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace scandiag {

/// Thrown (by drivers, via RunControl::throwIfStopped) when a token trips.
/// Carries the trip reason ("signal", "watchdog: total budget exceeded", ...).
class OperationCancelled : public std::runtime_error {
 public:
  explicit OperationCancelled(const std::string& reason)
      : std::runtime_error("operation cancelled: " + reason) {}
};

class CancellationToken {
 public:
  /// Requests cancellation. `reason` must have static storage duration (the
  /// token stores the pointer, not a copy) — this is what makes the call
  /// async-signal-safe. First caller wins; later reasons are dropped.
  void cancel(const char* reason) noexcept {
    const char* expected = nullptr;
    reason_.compare_exchange_strong(expected, reason, std::memory_order_relaxed);
    cancelled_.store(true, std::memory_order_release);
  }

  bool cancelled() const noexcept { return cancelled_.load(std::memory_order_acquire); }

  /// The first cancel() reason, or "" when not cancelled.
  const char* reason() const noexcept {
    const char* r = reason_.load(std::memory_order_relaxed);
    return r ? r : "";
  }

  /// Re-arms a token for reuse across sweeps in one process (tests, benches).
  void reset() noexcept {
    cancelled_.store(false, std::memory_order_relaxed);
    reason_.store(nullptr, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<const char*> reason_{nullptr};
};

/// Deadline phases with individually budgetable time. Matches the obs::Phase
/// stages that dominate sweep wall-clock.
enum class WatchdogPhase : int {
  PatternGen = 0,
  FaultSim,
  SessionEval,
  kCount,
};

class Watchdog {
 public:
  using Clock = std::chrono::steady_clock;

  /// `totalBudget` bounds the whole run from construction. Zero or negative
  /// budgets trip on the first poll (useful for deterministic trip tests).
  Watchdog(CancellationToken& token, std::chrono::milliseconds totalBudget);

  /// Optional per-phase budget; the clock for a phase starts at beginPhase().
  void setPhaseBudget(WatchdogPhase phase, std::chrono::milliseconds budget);
  void beginPhase(WatchdogPhase phase);
  void endPhase();

  /// Checks deadlines and trips the token when one is exceeded. Cheap enough
  /// for fault-batch granularity (one clock read + a few atomic loads).
  /// Returns true when the token is (now) cancelled. Thread-safe; the trip
  /// itself happens exactly once and increments watchdog_cancels.
  bool poll();

  bool tripped() const noexcept { return tripped_.load(std::memory_order_relaxed); }

 private:
  CancellationToken* token_;
  Clock::time_point totalDeadline_;
  // Per-phase: budget (ms, 0 = unbudgeted) and active-phase deadline.
  std::atomic<std::int64_t> phaseBudgetMs_[static_cast<int>(WatchdogPhase::kCount)];
  std::atomic<std::int64_t> phaseDeadlineNs_{0};  // 0 = no phase active
  std::atomic<int> activePhase_{-1};
  std::atomic<bool> tripped_{false};
};

/// The cancellation context drivers thread through their hot loops. Default
/// construction is inert (both null) — the disabled path costs two compares.
struct RunControl {
  CancellationToken* token = nullptr;
  Watchdog* watchdog = nullptr;

  bool shouldStop() const {
    if (watchdog && watchdog->poll()) return true;
    return token && token->cancelled();
  }

  /// Poll + unwind: throws OperationCancelled at a safe checkpoint.
  void throwIfStopped() const {
    if (shouldStop()) {
      throw OperationCancelled(token && token->cancelled() && *token->reason()
                                   ? token->reason()
                                   : "cancellation requested");
    }
  }
};

/// Process-wide token signal handlers flip. Drivers that opt into graceful
/// shutdown point their RunControl at this.
CancellationToken& globalCancelToken();

/// Installs SIGINT/SIGTERM handlers: the first signal cancels
/// globalCancelToken() (cooperative drain → flush → exit 6 in the caller);
/// a second signal hard-exits with code 6 immediately, so a wedged drain can
/// always be interrupted. Idempotent.
void installCancellationSignalHandlers();

}  // namespace scandiag
