#include "common/gf2.hpp"

#include "common/assert.hpp"

namespace scandiag {

Gf2System::Gf2System(std::size_t numVars, std::size_t rhsBits)
    : numVars_(numVars), rhsBits_(rhsBits), pivotRowOfVar_(numVars, npos) {}

void Gf2System::addEquation(const BitVector& coeffs, const BitVector& rhs) {
  SCANDIAG_REQUIRE(coeffs.size() == numVars_, "coefficient width mismatch");
  SCANDIAG_REQUIRE(rhs.size() == rhsBits_, "rhs width mismatch");
  SCANDIAG_REQUIRE(!reduced_, "cannot add equations after reduce()");
  rows_.push_back(Row{coeffs, rhs});
}

bool Gf2System::reduce() {
  SCANDIAG_REQUIRE(!reduced_, "reduce() called twice");
  reduced_ = true;
  std::size_t nextRow = 0;
  // Forward elimination with immediate back-substitution (Gauss-Jordan): after
  // the loop every pivot column has exactly one set bit across all rows.
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const std::size_t pivot = rows_[r].coeffs.findFirst();
    if (pivot == BitVector::npos) continue;  // may still be inconsistent; checked below
    // Eliminate this pivot from every other row.
    for (std::size_t other = 0; other < rows_.size(); ++other) {
      if (other != r && rows_[other].coeffs.size() && rows_[other].coeffs.test(pivot)) {
        rows_[other].coeffs ^= rows_[r].coeffs;
        rows_[other].rhs ^= rows_[r].rhs;
      }
    }
    pivotRowOfVar_[pivot] = r;
    ++nextRow;
  }
  rank_ = nextRow;
  for (const Row& row : rows_) {
    if (row.coeffs.none() && row.rhs.any()) return false;
  }
  return true;
}

std::optional<BitVector> Gf2System::forcedValue(std::size_t var) const {
  SCANDIAG_REQUIRE(reduced_, "call reduce() first");
  SCANDIAG_REQUIRE(var < numVars_, "variable index out of range");
  const std::size_t r = pivotRowOfVar_[var];
  if (r == npos) return std::nullopt;         // free variable
  if (rows_[r].coeffs.count() != 1) return std::nullopt;  // entangled with free vars
  return rows_[r].rhs;
}

bool Gf2System::forcedZero(std::size_t var) const {
  const auto v = forcedValue(var);
  return v.has_value() && v->none();
}

}  // namespace scandiag
