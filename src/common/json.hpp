// Minimal JSON emission (no parsing, no DOM): a streaming writer sufficient
// for the CLI's --json report output. Handles nesting, comma placement, and
// string escaping; misuse (closing the wrong scope, writing a value without a
// pending key inside an object) throws.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace scandiag {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, bool pretty = true);
  ~JsonWriter();

  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Inside an object: sets the key for the next value/container.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Convenience: key + value in one call.
  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

 private:
  enum class Scope { Object, Array };
  void beforeValue();
  void newline();
  void writeEscaped(const std::string& s);

  std::ostream* out_;
  bool pretty_;
  std::vector<Scope> scopes_;
  std::vector<bool> hasItems_;
  bool keyPending_ = false;
};

}  // namespace scandiag
