// Minimal JSON support: a streaming writer (JsonWriter) for report output and
// a small DOM + recursive-descent parser (JsonValue / parseJson) for reading
// our own emitted files back — metrics snapshots, bench goldens. The parser
// keeps integers exact (uint64/int64 are preserved bit-for-bit, not squeezed
// through double), which the counter round-trip tests depend on.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace scandiag {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, bool pretty = true);
  ~JsonWriter();

  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Inside an object: sets the key for the next value/container.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Convenience: key + value in one call.
  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

 private:
  enum class Scope { Object, Array };
  void beforeValue();
  void newline();
  void writeEscaped(const std::string& s);

  std::ostream* out_;
  bool pretty_;
  std::vector<Scope> scopes_;
  std::vector<bool> hasItems_;
  bool keyPending_ = false;
};

/// Parsed JSON document node. Numbers remember how they were spelled: an
/// unsigned integer literal is stored as uint64, a negative integer as int64,
/// anything with a fraction/exponent as double. Object members keep insertion
/// order (matching what JsonWriter emitted).
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::Null; }
  bool isBool() const { return kind_ == Kind::Bool; }
  bool isNumber() const { return kind_ == Kind::Number; }
  bool isString() const { return kind_ == Kind::String; }
  bool isArray() const { return kind_ == Kind::Array; }
  bool isObject() const { return kind_ == Kind::Object; }

  /// Type-checked accessors; throw std::invalid_argument on kind mismatch
  /// (asUint additionally rejects negative or fractional numbers).
  bool asBool() const;
  double asDouble() const;
  std::uint64_t asUint() const;
  std::int64_t asInt() const;
  const std::string& asString() const;

  /// Array element count / object member count; 0 for scalars.
  std::size_t size() const;
  /// Array element access (throws on kind mismatch / out of range).
  const JsonValue& at(std::size_t index) const;
  /// Object member lookup.
  bool has(const std::string& name) const;
  const JsonValue& at(const std::string& name) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;
  const std::vector<JsonValue>& items() const;

  static JsonValue makeNull();
  static JsonValue makeBool(bool v);
  static JsonValue makeUint(std::uint64_t v);
  static JsonValue makeInt(std::int64_t v);
  static JsonValue makeDouble(double v);
  static JsonValue makeString(std::string v);
  static JsonValue makeArray(std::vector<JsonValue> items);
  static JsonValue makeObject(std::vector<std::pair<std::string, JsonValue>> members);

 private:
  enum class NumberRepr { Uint, Int, Double };

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  NumberRepr numberRepr_ = NumberRepr::Uint;
  std::uint64_t uint_ = 0;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses a complete JSON document. Throws ParseError("json", line, ...) on
/// malformed input, trailing garbage, or nesting deeper than an internal
/// limit. Accepts exactly the subset JsonWriter emits (plus \uXXXX escapes).
JsonValue parseJson(const std::string& text);

}  // namespace scandiag
