#include "common/watchdog.hpp"

#include <csignal>
#include <unistd.h>

#include "obs/metrics.hpp"

namespace scandiag {

namespace {

std::int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Watchdog::Clock::now().time_since_epoch())
      .count();
}

}  // namespace

Watchdog::Watchdog(CancellationToken& token, std::chrono::milliseconds totalBudget)
    : token_(&token), totalDeadline_(Clock::now() + totalBudget) {
  for (auto& b : phaseBudgetMs_) b.store(0, std::memory_order_relaxed);
}

void Watchdog::setPhaseBudget(WatchdogPhase phase, std::chrono::milliseconds budget) {
  phaseBudgetMs_[static_cast<int>(phase)].store(budget.count(), std::memory_order_relaxed);
}

void Watchdog::beginPhase(WatchdogPhase phase) {
  const std::int64_t budgetMs =
      phaseBudgetMs_[static_cast<int>(phase)].load(std::memory_order_relaxed);
  activePhase_.store(static_cast<int>(phase), std::memory_order_relaxed);
  phaseDeadlineNs_.store(budgetMs > 0 ? nowNs() + budgetMs * 1'000'000 : 0,
                         std::memory_order_release);
}

void Watchdog::endPhase() {
  phaseDeadlineNs_.store(0, std::memory_order_release);
  activePhase_.store(-1, std::memory_order_relaxed);
}

bool Watchdog::poll() {
  if (token_->cancelled()) return true;
  const char* reason = nullptr;
  if (Clock::now() >= totalDeadline_) {
    reason = "watchdog: total budget exceeded";
  } else {
    const std::int64_t phaseDeadline = phaseDeadlineNs_.load(std::memory_order_acquire);
    if (phaseDeadline != 0 && nowNs() >= phaseDeadline) {
      switch (static_cast<WatchdogPhase>(activePhase_.load(std::memory_order_relaxed))) {
        case WatchdogPhase::PatternGen:
          reason = "watchdog: pattern-gen phase budget exceeded";
          break;
        case WatchdogPhase::FaultSim:
          reason = "watchdog: fault-sim phase budget exceeded";
          break;
        case WatchdogPhase::SessionEval:
          reason = "watchdog: session-eval phase budget exceeded";
          break;
        default:
          reason = "watchdog: phase budget exceeded";
          break;
      }
    }
  }
  if (!reason) return false;
  // Count the trip exactly once even when many workers poll past the
  // deadline concurrently.
  bool expected = false;
  if (tripped_.compare_exchange_strong(expected, true, std::memory_order_relaxed)) {
    obs::count(obs::Counter::WatchdogCancels);
  }
  token_->cancel(reason);
  return true;
}

CancellationToken& globalCancelToken() {
  static CancellationToken token;
  return token;
}

namespace {

// A plain handler function, not a lambda with captures: everything it touches
// must be async-signal-safe (atomic stores, write(2), _exit(2)).
std::atomic<int> gSignalCount{0};

void cancellationHandler(int) {
  const int prior = gSignalCount.fetch_add(1, std::memory_order_relaxed);
  if (prior == 0) {
    globalCancelToken().cancel("signal");
    static const char msg[] =
        "\n[scandiag] interrupt: draining and flushing checkpoint "
        "(interrupt again to abort)\n";
    [[maybe_unused]] ssize_t n = ::write(STDERR_FILENO, msg, sizeof msg - 1);
  } else {
    ::_exit(6);  // kExitInterrupted: second signal aborts a wedged drain
  }
}

}  // namespace

void installCancellationSignalHandlers() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  struct sigaction sa {};
  sa.sa_handler = cancellationHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: let blocking syscalls return EINTR
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

}  // namespace scandiag
