// Crash-safe record journal + atomic file commits.
//
// Long sweeps (500 faults x several schemes x several budgets) die to OOM
// kills, CI timeouts, and Ctrl-C. The journal is the durability primitive the
// checkpoint/resume layer (src/diagnosis/checkpoint.*) builds on:
//
//  * **Append-only framing.** The file is a header frame followed by record
//    frames. Every frame is `[u32 payloadLen][u32 crc32(payload)][payload]`,
//    little-endian, and every payload starts with a u16 record type. Appends
//    go through one mutex, are flushed with write(2), and fsync'd, so a record
//    that append() returned for survives a SIGKILL an instant later.
//  * **Atomic creation.** A new journal is written to `<path>.tmp` (header
//    frame + fsync) and renamed into place, then the directory is fsync'd —
//    no observer ever sees a half-written header.
//  * **Torn tails are normal, corruption is not.** A kill mid-append leaves
//    one incomplete frame at EOF; the reader drops it and *reports* it
//    (truncatedTail/truncatedAtOffset) instead of erroring — that is the
//    expected crash artifact. A CRC mismatch on a frame whose bytes are fully
//    present, or a malformed header, can only mean the bytes rotted and
//    raises a typed error (JournalCorruptError / JournalFormatError), never
//    silent acceptance.
//  * **Setup digests.** The header stores a caller-provided u64 digest of the
//    experiment setup (config, topology hash, seed, scheme). Reopening for
//    append verifies it, so a journal can never be resumed against a
//    mismatched run (JournalDigestMismatchError).
//
// atomicWriteFile() is the sibling primitive for whole-file artifacts
// (BENCH_*.json, metrics snapshots): write temp in the target directory,
// fsync, rename. A crash can leave a stale temp file, never a torn artifact.
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace scandiag {

/// Any journal failure; catch the subtypes to distinguish causes.
class JournalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The file is not a journal (bad magic/version) or a frame is malformed.
class JournalFormatError : public JournalError {
 public:
  using JournalError::JournalError;
};

/// A fully-present frame failed its CRC — bytes changed after commit.
class JournalCorruptError : public JournalError {
 public:
  using JournalError::JournalError;
};

/// The journal's setup digest does not match the resuming run's setup.
class JournalDigestMismatchError : public JournalError {
 public:
  using JournalError::JournalError;
};

/// CRC-32 (IEEE 802.3, reflected). `seed` chains partial buffers.
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

/// FNV-1a 64-bit over `text`, chained through `seed` — the digest primitive
/// the checkpoint layer hashes configs/topologies with (stable across
/// platforms, unlike std::hash).
std::uint64_t fnv1a64(const std::string& text, std::uint64_t seed = 0xcbf29ce484222325ULL);
std::uint64_t fnv1a64(std::uint64_t value, std::uint64_t seed);
/// Raw-bytes form — the structural netlist hasher folds gate/fanin arrays
/// through this without materializing intermediate strings.
std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

struct JournalRecord {
  std::uint16_t type = 0;
  std::string payload;  // opaque bytes, CRC-verified
};

struct JournalContents {
  std::uint64_t setupDigest = 0;
  std::string setupInfo;  // human-readable setup description from the header
  std::vector<JournalRecord> records;
  /// True when an incomplete frame was found (and dropped) at EOF — the
  /// normal artifact of a kill mid-append. Offset of the torn frame's start.
  bool truncatedTail = false;
  std::uint64_t truncatedAtOffset = 0;
};

/// Reads and CRC-verifies a whole journal. Throws FileNotFoundError-shaped
/// JournalError when the file cannot be opened, JournalFormatError /
/// JournalCorruptError on malformed or rotted bytes. A torn tail is reported,
/// not thrown.
JournalContents readJournal(const std::string& path);

class JournalWriter {
 public:
  /// Creates `path` atomically (temp + rename) with a header carrying
  /// `setupDigest`/`setupInfo`, then holds it open for append. Fails with
  /// JournalError if `path` already exists (pass resume semantics through
  /// openForAppend instead — creation never clobbers).
  static JournalWriter create(const std::string& path, std::uint64_t setupDigest,
                              const std::string& setupInfo);

  /// Opens an existing journal for append after verifying its setup digest
  /// against `expectedDigest`. A torn tail frame is truncated away first
  /// (reported through `contents`), so subsequent appends land on a clean
  /// frame boundary. `contents` receives everything readJournal() saw.
  static JournalWriter openForAppend(const std::string& path, std::uint64_t expectedDigest,
                                     JournalContents* contents);

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&&) = delete;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  /// Appends one framed record and fsyncs. Thread-safe (one internal mutex —
  /// pool workers journal completed faults concurrently). Throws JournalError
  /// on I/O failure; on return the record is durable.
  void append(std::uint16_t type, const std::string& payload);

  const std::string& path() const { return path_; }
  /// Records appended through this writer (not counting inherited ones).
  std::uint64_t appendedRecords() const { return appended_; }

 private:
  JournalWriter(std::string path, int fd);

  std::string path_;
  int fd_ = -1;
  std::mutex mutex_;
  std::uint64_t appended_ = 0;
};

/// Atomically replaces `path` with `contents`: write `<path>.tmp.<pid>` in
/// the same directory, flush + fsync, rename over `path`, fsync the
/// directory. Creates parent directories as needed. A crash never leaves a
/// torn `path` — at worst a stale temp file. Throws std::runtime_error on
/// I/O failure.
void atomicWriteFile(const std::string& path, const std::string& contents);

}  // namespace scandiag
