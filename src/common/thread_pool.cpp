#include "common/thread_pool.hpp"

#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace scandiag {

namespace {

thread_local bool tlsInsideParallelRegion = false;

/// RAII guard marking the current thread as being inside pool-managed work.
struct RegionGuard {
  bool previous;
  RegionGuard() : previous(tlsInsideParallelRegion) { tlsInsideParallelRegion = true; }
  ~RegionGuard() { tlsInsideParallelRegion = previous; }
};

}  // namespace

std::size_t defaultThreadCount() {
  if (const char* env = std::getenv("SCANDIAG_THREADS")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

bool insideParallelRegion() { return tlsInsideParallelRegion; }

ThreadPool::ThreadPool(std::size_t numThreads) {
  const std::size_t lanes = numThreads == 0 ? defaultThreadCount() : numThreads;
  SCANDIAG_REQUIRE(lanes <= 4096,
                   "thread count " + std::to_string(lanes) +
                       " is implausibly large (negative value passed to --threads?)");
  workers_.reserve(lanes - 1);
  // Lane 0 is the calling thread; pool workers take lanes 1..N (the lane
  // index keys per-worker utilization in the metrics registry).
  for (std::size_t i = 0; i + 1 < lanes; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::post(std::function<void()> task) {
  if (workers_.empty() || tlsInsideParallelRegion) {
    // Nested inline execution is already inside some lane's WorkerScope;
    // only top-level serial execution charges lane 0.
    if (tlsInsideParallelRegion) {
      RegionGuard guard;
      task();
    } else {
      RegionGuard guard;
      obs::WorkerScope busy(0);
      task();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SCANDIAG_ASSERT(!stopping_, "task posted to a stopping thread pool");
    queue_.push_back(std::move(task));
  }
  available_.notify_one();
}

void ThreadPool::workerLoop(std::size_t lane) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.erase(queue_.begin());
    }
    RegionGuard guard;
    obs::WorkerScope busy(lane);
    try {
      task();
    } catch (...) {
      // A task exception must never kill the worker (std::terminate) — the
      // pool would then deadlock every later batch. Stash the first escaped
      // exception; parallelForRange rethrows it on the submitting thread.
      std::lock_guard<std::mutex> lock(mutex_);
      if (!escapedError_) escapedError_ = std::current_exception();
    }
  }
}

void ThreadPool::parallelForRange(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t chunks = std::min(threadCount(), n);
  if (chunks == 1 || tlsInsideParallelRegion) {
    if (tlsInsideParallelRegion) {  // nested: the outer lane is already timed
      RegionGuard guard;
      body(0, n);
    } else {
      RegionGuard guard;
      obs::WorkerScope busy(0);
      body(0, n);
    }
    return;
  }

  // Fixed partition: chunk c owns [c*n/chunks, (c+1)*n/chunks) — a pure
  // function of (n, threadCount), independent of scheduling.
  struct Completion {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::vector<std::exception_ptr> errors;
  };
  auto state = std::make_shared<Completion>();
  state->remaining = chunks - 1;
  state->errors.assign(chunks, nullptr);

  for (std::size_t c = 1; c < chunks; ++c) {
    const std::size_t begin = c * n / chunks;
    const std::size_t end = (c + 1) * n / chunks;
    auto chunkTask = [state, &body, c, begin, end] {
      // RAII decrement: `remaining` reaches 0 no matter how the body exits,
      // so the submitting thread can never wait forever on a thrown chunk.
      struct Decrement {
        Completion& completion;
        ~Decrement() {
          std::lock_guard<std::mutex> lock(completion.mutex);
          if (--completion.remaining == 0) completion.done.notify_one();
        }
      } decrement{*state};
      try {
        body(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->errors[c] = std::current_exception();
      }
    };
    try {
      post(chunkTask);
    } catch (...) {
      // Queueing itself failed (allocation, pool shutting down). The task
      // never reached a worker, so run the chunk inline: the batch still
      // completes, `remaining` still hits 0, and the error (if the body
      // throws here too) is recorded under this chunk's index as usual.
      chunkTask();
    }
  }

  {
    RegionGuard guard;
    obs::WorkerScope busy(0);
    try {
      body(0, n / chunks);
    } catch (...) {
      std::lock_guard<std::mutex> lock(state->mutex);
      state->errors[0] = std::current_exception();
    }
  }

  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock, [&] { return state->remaining == 0; });
    for (const std::exception_ptr& error : state->errors) {
      if (error) std::rethrow_exception(error);
    }
  }
  // No chunk recorded an error, but a worker may have caught an exception
  // that escaped some other task (see workerLoop): surface it here rather
  // than dropping it on the floor.
  std::exception_ptr escaped;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    escaped = escapedError_;
    escapedError_ = nullptr;
  }
  if (escaped) std::rethrow_exception(escaped);
}

namespace {

std::mutex globalPoolMutex;
std::unique_ptr<ThreadPool>& globalPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool& globalPool() {
  std::lock_guard<std::mutex> lock(globalPoolMutex);
  std::unique_ptr<ThreadPool>& slot = globalPoolSlot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void setGlobalThreadCount(std::size_t n) {
  std::lock_guard<std::mutex> lock(globalPoolMutex);
  globalPoolSlot() = std::make_unique<ThreadPool>(n);
}

}  // namespace scandiag
