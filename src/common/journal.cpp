#include "common/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/errors.hpp"

namespace scandiag {
namespace {

// Frame layout: [u32 payloadLen][u32 crc32(payload)][payload], little-endian.
// The header frame is an ordinary frame whose payload starts with record type
// kHeaderType and carries magic + version + setup digest + setup info.
constexpr std::uint16_t kHeaderType = 0;
constexpr char kMagic[4] = {'S', 'D', 'J', 'L'};
constexpr std::uint16_t kVersion = 1;
constexpr std::size_t kFramePrefix = 8;  // len + crc
constexpr std::size_t kMaxPayload = 1u << 24;  // 16 MiB sanity bound per record
// Sane cap on the header's setup-info string: far above any real setup
// description, far below an allocation a corrupt header could weaponize.
constexpr std::uint32_t kMaxSetupInfo = 64u * 1024;

const std::array<std::uint32_t, 256>& crcTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ (0xEDB88320u & (~(c & 1) + 1));
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void putU16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void putU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void putU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint16_t getU16(const char* p) {
  return static_cast<std::uint16_t>(static_cast<unsigned char>(p[0]) |
                                    (static_cast<unsigned char>(p[1]) << 8));
}

std::uint32_t getU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

std::uint64_t getU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

std::string frameFor(std::uint16_t type, const std::string& payload) {
  std::string body;
  body.reserve(2 + payload.size());
  putU16(body, type);
  body.append(payload);
  std::string frame;
  frame.reserve(kFramePrefix + body.size());
  putU32(frame, static_cast<std::uint32_t>(body.size()));
  putU32(frame, crc32(body.data(), body.size()));
  frame.append(body);
  return frame;
}

std::string headerPayload(std::uint64_t setupDigest, const std::string& setupInfo) {
  std::string payload;
  payload.append(kMagic, sizeof kMagic);
  putU16(payload, kVersion);
  putU64(payload, setupDigest);
  putU32(payload, static_cast<std::uint32_t>(setupInfo.size()));
  payload.append(setupInfo);
  return payload;
}

[[noreturn]] void throwErrno(const std::string& what, const std::string& path) {
  throw JournalError(what + " '" + path + "': " + std::strerror(errno));
}

void writeAll(int fd, const char* data, std::size_t size, const std::string& path) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throwErrno("journal: write failed for", path);
    }
    done += static_cast<std::size_t>(n);
  }
}

void fsyncOrThrow(int fd, const std::string& path) {
  if (::fsync(fd) != 0) throwErrno("journal: fsync failed for", path);
}

// fsync the directory containing `path` so a just-renamed entry is durable.
void fsyncParentDir(const std::string& path) {
  std::filesystem::path dir = std::filesystem::path(path).parent_path();
  if (dir.empty()) dir = ".";
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return;  // best effort: some filesystems refuse directory opens
  ::fsync(dfd);
  ::close(dfd);
}

// Parses the header payload (past the u16 type) or throws JournalFormatError.
void parseHeader(const std::string& payload, const std::string& path,
                 JournalContents& out) {
  // magic(4) + version(2) + digest(8) + infoLen(4)
  if (payload.size() < 18 || std::memcmp(payload.data(), kMagic, sizeof kMagic) != 0) {
    throw JournalFormatError("journal: '" + path + "' has no SDJL header (not a journal?)");
  }
  const std::uint16_t version = getU16(payload.data() + 4);
  if (version != kVersion) {
    throw JournalFormatError("journal: '" + path + "' has unsupported version " +
                             std::to_string(version));
  }
  out.setupDigest = getU64(payload.data() + 6);
  const std::uint32_t infoLen = getU32(payload.data() + 14);
  // The info length rides inside a CRC-framed payload, but a corrupt header
  // can still be internally consistent — never size an allocation (or accept
  // a setup string) beyond what a writer could legitimately have produced.
  if (infoLen > kMaxSetupInfo) {
    throw JournalCorruptError("journal: '" + path + "' header claims a " +
                              std::to_string(infoLen) + "-byte setup info (cap " +
                              std::to_string(kMaxSetupInfo) + ")");
  }
  if (payload.size() != 18 + static_cast<std::size_t>(infoLen)) {
    throw JournalFormatError("journal: '" + path + "' header info length mismatch");
  }
  out.setupInfo = payload.substr(18);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) c = crcTable()[(c ^ bytes[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint64_t fnv1a64(const std::string& text, std::uint64_t seed) {
  return fnv1a64(text.data(), text.size(), seed);
}

std::uint64_t fnv1a64(const void* data, std::size_t size, std::uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a64(std::uint64_t value, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xFF;
    h *= 0x100000001b3ULL;
  }
  return h;
}

JournalContents readJournal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw FileNotFoundError(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();

  JournalContents out;
  std::size_t pos = 0;
  bool sawHeader = false;
  while (pos < bytes.size()) {
    // An incomplete frame prefix or body at EOF is a torn tail: report + stop.
    if (bytes.size() - pos < kFramePrefix) {
      out.truncatedTail = true;
      out.truncatedAtOffset = pos;
      break;
    }
    const std::uint32_t len = getU32(bytes.data() + pos);
    const std::uint32_t storedCrc = getU32(bytes.data() + pos + 4);
    if (len < 2 || len > kMaxPayload) {
      // A wild length on the FIRST frame means this is not a journal at all;
      // past the header it means the bytes rotted in place.
      if (!sawHeader) {
        throw JournalFormatError("journal: '" + path + "' has no SDJL header (not a journal?)");
      }
      throw JournalCorruptError("journal: '" + path + "' frame at offset " +
                                std::to_string(pos) + " has implausible length " +
                                std::to_string(len));
    }
    if (bytes.size() - pos - kFramePrefix < len) {
      out.truncatedTail = true;
      out.truncatedAtOffset = pos;
      break;
    }
    const char* body = bytes.data() + pos + kFramePrefix;
    if (crc32(body, len) != storedCrc) {
      throw JournalCorruptError("journal: '" + path + "' CRC mismatch at offset " +
                                std::to_string(pos));
    }
    const std::uint16_t type = getU16(body);
    std::string payload(body + 2, len - 2);
    if (!sawHeader) {
      if (type != kHeaderType) {
        throw JournalFormatError("journal: '" + path + "' first frame is not a header");
      }
      parseHeader(payload, path, out);
      sawHeader = true;
    } else if (type == kHeaderType) {
      throw JournalFormatError("journal: '" + path + "' has a duplicate header frame at offset " +
                               std::to_string(pos));
    } else {
      out.records.push_back(JournalRecord{type, std::move(payload)});
    }
    pos += kFramePrefix + len;
  }
  if (!sawHeader) {
    // Empty file or header itself torn: the journal never finished creation,
    // which atomic create should make impossible — treat as format error.
    throw JournalFormatError("journal: '" + path + "' is missing a complete header frame");
  }
  return out;
}

JournalWriter::JournalWriter(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : path_(std::move(other.path_)), fd_(other.fd_), appended_(other.appended_) {
  other.fd_ = -1;
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

JournalWriter JournalWriter::create(const std::string& path, std::uint64_t setupDigest,
                                    const std::string& setupInfo) {
  if (std::filesystem::exists(path)) {
    throw JournalError("journal: '" + path + "' already exists (use --resume to continue it)");
  }
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throwErrno("journal: cannot create", tmp);
  try {
    const std::string frame = frameFor(kHeaderType, headerPayload(setupDigest, setupInfo));
    writeAll(fd, frame.data(), frame.size(), tmp);
    fsyncOrThrow(fd, tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throwErrno("journal: cannot rename into place", path);
  }
  fsyncParentDir(path);
  return JournalWriter(path, fd);
}

JournalWriter JournalWriter::openForAppend(const std::string& path,
                                           std::uint64_t expectedDigest,
                                           JournalContents* contents) {
  JournalContents read = readJournal(path);
  if (read.setupDigest != expectedDigest) {
    std::ostringstream msg;
    msg << "journal: '" << path << "' was written for a different setup (journal digest 0x"
        << std::hex << read.setupDigest << ", this run is 0x" << expectedDigest
        << std::dec << "); refusing to resume";
    if (!read.setupInfo.empty()) msg << " [journal setup: " << read.setupInfo << "]";
    throw JournalDigestMismatchError(msg.str());
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) throwErrno("journal: cannot open for append", path);
  if (read.truncatedTail) {
    // Drop the torn frame so appends land on a frame boundary — otherwise the
    // tear would read as mid-file corruption after the next append.
    if (::ftruncate(fd, static_cast<off_t>(read.truncatedAtOffset)) != 0) {
      ::close(fd);
      throwErrno("journal: cannot truncate torn tail of", path);
    }
    fsyncOrThrow(fd, path);
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    throwErrno("journal: cannot seek to end of", path);
  }
  if (contents) *contents = std::move(read);
  return JournalWriter(path, fd);
}

void JournalWriter::append(std::uint16_t type, const std::string& payload) {
  const std::string frame = frameFor(type, payload);
  std::lock_guard<std::mutex> lock(mutex_);
  writeAll(fd_, frame.data(), frame.size(), path_);
  fsyncOrThrow(fd_, path_);
  ++appended_;
}

void atomicWriteFile(const std::string& path, const std::string& contents) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw std::runtime_error("atomicWriteFile: cannot create '" + tmp +
                             "': " + std::strerror(errno));
  }
  try {
    writeAll(fd, contents.data(), contents.size(), tmp);
    fsyncOrThrow(fd, tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw std::runtime_error("atomicWriteFile: cannot rename '" + tmp + "' over '" +
                             path + "': " + std::strerror(err));
  }
  fsyncParentDir(path);
}

}  // namespace scandiag
