// Dynamic bit vector with 64-bit word access.
//
// This is the workhorse container of scandiag: pattern batches in the logic
// simulator, per-cell error streams in the fault simulator, group membership
// masks in partitions, and candidate sets in the diagnosis engine are all
// BitVectors. The diagnosis inner loops are word-wise (AND/OR/XOR/popcount),
// which is what makes sweeping hundreds of partition configurations over the
// same fault-response data cheap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace scandiag {

class BitVector {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  BitVector() = default;
  explicit BitVector(std::size_t nbits, bool value = false);

  /// Builds from a string of '0'/'1' characters, index 0 first.
  static BitVector fromString(const std::string& bits);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t wordCount() const { return words_.size(); }

  void resize(std::size_t nbits, bool value = false);
  void clear();

  bool test(std::size_t i) const;
  void set(std::size_t i, bool value = true);
  void reset(std::size_t i) { set(i, false); }
  void flip(std::size_t i);

  void setAll();
  void resetAll();

  /// Number of set bits.
  std::size_t count() const;
  bool any() const;
  bool none() const { return !any(); }
  bool all() const;

  /// Index of first set bit, or npos if none.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t findFirst() const;
  std::size_t findNext(std::size_t after) const;

  /// Word access for bit-parallel kernels. The tail word is kept masked so
  /// word-wise reductions (count/any) never see garbage bits.
  Word word(std::size_t w) const { return words_[w]; }
  void setWord(std::size_t w, Word value);
  const Word* data() const { return words_.data(); }
  Word* data() { return words_.data(); }

  BitVector& operator&=(const BitVector& rhs);
  BitVector& operator|=(const BitVector& rhs);
  BitVector& operator^=(const BitVector& rhs);
  /// this &= ~rhs
  BitVector& andNot(const BitVector& rhs);

  friend BitVector operator&(BitVector lhs, const BitVector& rhs) { return lhs &= rhs; }
  friend BitVector operator|(BitVector lhs, const BitVector& rhs) { return lhs |= rhs; }
  friend BitVector operator^(BitVector lhs, const BitVector& rhs) { return lhs ^= rhs; }

  bool operator==(const BitVector& rhs) const;
  bool operator!=(const BitVector& rhs) const { return !(*this == rhs); }

  /// True iff this and rhs share at least one set bit.
  bool intersects(const BitVector& rhs) const;
  /// True iff every set bit of this is also set in rhs.
  bool isSubsetOf(const BitVector& rhs) const;

  /// Set bits listed as indices (ascending).
  std::vector<std::size_t> toIndices() const;
  std::string toString() const;

 private:
  void maskTail();

  std::size_t size_ = 0;
  std::vector<Word> words_;
};

}  // namespace scandiag
