// GF(2) linear system with vector-valued right-hand sides.
//
// Used by the superposition pruner: each BIST group contributes one equation
//   XOR_{atoms a contained in group g} sig(a) = errorSignature(g)
// where sig(a) is the (unknown) aggregate MISR error signature of atom a.
// Because the MISR is linear over GF(2), signatures superpose, so the system
// is linear with m-bit vector unknowns — equivalently, m independent scalar
// GF(2) systems sharing one coefficient matrix. We row-reduce the coefficient
// matrix once and carry the m-bit RHS along.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/bitvector.hpp"

namespace scandiag {

class Gf2System {
 public:
  /// numVars unknowns, each an rhsBits-wide GF(2) vector.
  Gf2System(std::size_t numVars, std::size_t rhsBits);

  std::size_t numVars() const { return numVars_; }
  std::size_t rhsBits() const { return rhsBits_; }

  /// coeffs.size() == numVars(), rhs.size() == rhsBits().
  void addEquation(const BitVector& coeffs, const BitVector& rhs);

  /// Gauss-Jordan elimination. Returns false iff the system is inconsistent
  /// (a zero coefficient row with nonzero RHS), which in the diagnosis setting
  /// signals MISR aliasing or a masking-model violation.
  bool reduce();

  /// After reduce(): the unique value of variable v if the system forces one
  /// (v is a pivot whose row involves no other variable), nullopt otherwise.
  std::optional<BitVector> forcedValue(std::size_t var) const;

  /// Convenience: after reduce(), true iff variable v is forced to the all-zero
  /// vector. Such an atom carries no error signal in any solution.
  bool forcedZero(std::size_t var) const;

  std::size_t rank() const { return rank_; }

 private:
  struct Row {
    BitVector coeffs;
    BitVector rhs;
  };

  std::size_t numVars_;
  std::size_t rhsBits_;
  std::vector<Row> rows_;
  std::vector<std::size_t> pivotRowOfVar_;  // npos if var is not a pivot
  std::size_t rank_ = 0;
  bool reduced_ = false;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

}  // namespace scandiag
