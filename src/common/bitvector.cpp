#include "common/bitvector.hpp"

#include <algorithm>
#include <bit>

#include "common/assert.hpp"

namespace scandiag {

namespace {
std::size_t wordsFor(std::size_t nbits) { return (nbits + BitVector::kWordBits - 1) / BitVector::kWordBits; }
}  // namespace

BitVector::BitVector(std::size_t nbits, bool value)
    : size_(nbits), words_(wordsFor(nbits), value ? ~Word{0} : Word{0}) {
  maskTail();
}

BitVector BitVector::fromString(const std::string& bits) {
  BitVector v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    SCANDIAG_REQUIRE(bits[i] == '0' || bits[i] == '1', "bit string must contain only 0/1");
    if (bits[i] == '1') v.set(i);
  }
  return v;
}

void BitVector::resize(std::size_t nbits, bool value) {
  const std::size_t oldBits = size_;
  words_.resize(wordsFor(nbits), Word{0});
  if (value && nbits > oldBits) {
    // Fill the gap bit-by-bit in the (possibly partial) old tail word, then
    // whole words.
    size_ = nbits;
    for (std::size_t i = oldBits; i < nbits && i % kWordBits != 0; ++i) set(i);
    for (std::size_t w = wordsFor(oldBits); w < words_.size(); ++w) {
      if (w * kWordBits >= oldBits) words_[w] = ~Word{0};
    }
  }
  size_ = nbits;
  maskTail();
}

void BitVector::clear() {
  size_ = 0;
  words_.clear();
}

bool BitVector::test(std::size_t i) const {
  SCANDIAG_REQUIRE(i < size_, "bit index out of range");
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void BitVector::set(std::size_t i, bool value) {
  SCANDIAG_REQUIRE(i < size_, "bit index out of range");
  const Word mask = Word{1} << (i % kWordBits);
  if (value)
    words_[i / kWordBits] |= mask;
  else
    words_[i / kWordBits] &= ~mask;
}

void BitVector::flip(std::size_t i) {
  SCANDIAG_REQUIRE(i < size_, "bit index out of range");
  words_[i / kWordBits] ^= Word{1} << (i % kWordBits);
}

void BitVector::setAll() {
  std::fill(words_.begin(), words_.end(), ~Word{0});
  maskTail();
}

void BitVector::resetAll() { std::fill(words_.begin(), words_.end(), Word{0}); }

std::size_t BitVector::count() const {
  std::size_t n = 0;
  for (Word w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool BitVector::any() const {
  for (Word w : words_)
    if (w) return true;
  return false;
}

bool BitVector::all() const { return count() == size_; }

std::size_t BitVector::findFirst() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w]) return w * kWordBits + static_cast<std::size_t>(std::countr_zero(words_[w]));
  }
  return npos;
}

std::size_t BitVector::findNext(std::size_t after) const {
  // `after >= size_` covers npos (and any other out-of-range index) before
  // the `after + 1` below can wrap around to 0 and return the first set bit.
  if (after >= size_ || after + 1 >= size_) return npos;
  std::size_t i = after + 1;
  std::size_t w = i / kWordBits;
  Word cur = words_[w] & (~Word{0} << (i % kWordBits));
  while (true) {
    if (cur) return w * kWordBits + static_cast<std::size_t>(std::countr_zero(cur));
    if (++w >= words_.size()) return npos;
    cur = words_[w];
  }
}

void BitVector::setWord(std::size_t w, Word value) {
  SCANDIAG_REQUIRE(w < words_.size(), "word index out of range");
  words_[w] = value;
  if (w + 1 == words_.size()) maskTail();
}

BitVector& BitVector::operator&=(const BitVector& rhs) {
  SCANDIAG_REQUIRE(size_ == rhs.size_, "BitVector size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= rhs.words_[w];
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& rhs) {
  SCANDIAG_REQUIRE(size_ == rhs.size_, "BitVector size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= rhs.words_[w];
  return *this;
}

BitVector& BitVector::operator^=(const BitVector& rhs) {
  SCANDIAG_REQUIRE(size_ == rhs.size_, "BitVector size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= rhs.words_[w];
  return *this;
}

BitVector& BitVector::andNot(const BitVector& rhs) {
  SCANDIAG_REQUIRE(size_ == rhs.size_, "BitVector size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= ~rhs.words_[w];
  maskTail();
  return *this;
}

bool BitVector::operator==(const BitVector& rhs) const {
  return size_ == rhs.size_ && words_ == rhs.words_;
}

bool BitVector::intersects(const BitVector& rhs) const {
  SCANDIAG_REQUIRE(size_ == rhs.size_, "BitVector size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w)
    if (words_[w] & rhs.words_[w]) return true;
  return false;
}

bool BitVector::isSubsetOf(const BitVector& rhs) const {
  SCANDIAG_REQUIRE(size_ == rhs.size_, "BitVector size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w)
    if (words_[w] & ~rhs.words_[w]) return false;
  return true;
}

std::vector<std::size_t> BitVector::toIndices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for (std::size_t i = findFirst(); i != npos; i = findNext(i)) out.push_back(i);
  return out;
}

std::string BitVector::toString() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i)
    if (test(i)) s[i] = '1';
  return s;
}

void BitVector::maskTail() {
  if (words_.empty()) return;
  const std::size_t tail = size_ % kWordBits;
  if (tail != 0) words_.back() &= (~Word{0} >> (kWordBits - tail));
}

}  // namespace scandiag
