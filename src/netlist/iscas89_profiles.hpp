// Published size profiles of the ISCAS-89 sequential benchmark circuits.
//
// The profiles drive the synthetic generator (see DESIGN.md §5: the real
// netlists are not redistributable here, so we regenerate circuits with the
// published PI/PO/DFF/gate counts and locality-controlled structure). Users
// with the original .bench files can bypass profiles entirely via parseBench.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace scandiag {

struct Iscas89Profile {
  std::string name;
  std::size_t numInputs;
  std::size_t numOutputs;
  std::size_t numDffs;
  std::size_t numGates;  // combinational gates, inverters/buffers included
};

/// All built-in profiles, smallest first.
const std::vector<Iscas89Profile>& iscas89Profiles();

/// Lookup by name ("s953"); throws std::invalid_argument if unknown.
const Iscas89Profile& iscas89Profile(std::string_view name);

/// The six largest ISCAS-89 circuits, as evaluated in the paper's Table 2:
/// s9234, s13207, s15850, s35932, s38417, s38584.
const std::vector<std::string>& sixLargestIscas89();

/// The eight full-scan ISCAS-89 modules of the ITC'02 d695 SOC (paper Fig. 4):
/// s838, s9234, s5378, s38584, s13207, s38417, s35932, s15850 in daisy-chain
/// order.
const std::vector<std::string>& d695Iscas89Modules();

}  // namespace scandiag
