#include "netlist/levelizer.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace scandiag {

Levelization levelize(const Netlist& netlist) {
  const std::size_t n = netlist.gateCount();
  Levelization out;
  out.level.assign(n, 0);
  out.order.reserve(netlist.combGateCount());

  // Kahn's algorithm over combinational gates only. A DFF's D-input edge is a
  // *sequential* edge: the DFF's output does not depend combinationally on it,
  // so DFFs contribute no in-degree and never enter the order.
  std::vector<std::size_t> pending(n, 0);
  std::vector<GateId> ready;
  for (GateId id = 0; id < n; ++id) {
    const Gate& g = netlist.gate(id);
    if (isSourceType(g.type)) continue;
    pending[id] = g.fanins.size();
    std::size_t resolved = 0;
    for (GateId f : g.fanins) {
      SCANDIAG_REQUIRE(f != kInvalidGate, "dangling fanin during levelization");
      if (isSourceType(netlist.gate(f).type)) ++resolved;
    }
    pending[id] -= resolved;
    if (pending[id] == 0) ready.push_back(id);
  }

  const auto& fanouts = netlist.fanouts();
  while (!ready.empty()) {
    const GateId id = ready.back();
    ready.pop_back();
    std::size_t lvl = 0;
    for (GateId f : netlist.gate(id).fanins) lvl = std::max(lvl, out.level[f] + 1);
    out.level[id] = lvl;
    out.maxLevel = std::max(out.maxLevel, lvl);
    out.order.push_back(id);
    for (GateId user : fanouts[id]) {
      if (isSourceType(netlist.gate(user).type)) continue;  // DFF D edge is sequential
      if (--pending[user] == 0) ready.push_back(user);
    }
  }

  if (out.order.size() != netlist.combGateCount()) {
    for (GateId id = 0; id < n; ++id) {
      if (!isSourceType(netlist.gate(id).type) && pending[id] != 0)
        SCANDIAG_REQUIRE(false, "combinational cycle through gate " + netlist.gateName(id));
    }
  }
  // Gates at lower levels can appear after higher ones with a stack; re-sort by
  // level (stable on id) so cone-restricted evaluation can binary-slice later.
  std::stable_sort(out.order.begin(), out.order.end(),
                   [&](GateId a, GateId b) { return out.level[a] < out.level[b]; });
  return out;
}

}  // namespace scandiag
