// Fault-cone (forward reachability) analysis.
//
// The output cone of a fault site is the set of gates a value change at the
// site can reach through combinational paths, and — what diagnosis cares
// about — the set of DFFs whose D input lies in that cone: only those scan
// cells can ever capture an error from the fault. Propagation stops at DFFs
// because full-scan BIST captures exactly one functional cycle per pattern.
//
// Used for (a) cone-restricted faulty re-simulation in the fault simulator
// and (b) the clustering statistics that motivate interval-based partitioning.
#pragma once

#include <vector>

#include "common/bitvector.hpp"
#include "netlist/levelizer.hpp"
#include "netlist/netlist.hpp"

namespace scandiag {

struct FaultCone {
  /// Combinational gates whose value can differ, in evaluation (level) order.
  std::vector<GateId> gates;
  /// reachableDffs.test(k) == DFF ordinal k (index into netlist.dffs()) can
  /// capture an error.
  BitVector reachableDffs;
  /// Primary-output gates in the cone (observed on chip pins, not scan cells).
  std::vector<GateId> reachableOutputs;
};

/// Cone of a value change on the *output* of gate `site` (any gate kind; for
/// a source gate the cone is its combinational fanout).
FaultCone computeCone(const Netlist& netlist, const Levelization& lev, GateId site);

/// Span statistics of a cone's captured cells along an ordering of the DFFs
/// (cellOrder[k] = chain position of DFF ordinal k): min/max position and
/// count, quantifying the "clustered failing cells" phenomenon of the paper.
struct ConeSpan {
  std::size_t cells = 0;
  std::size_t firstPos = 0;
  std::size_t lastPos = 0;
  /// (lastPos - firstPos + 1) / chainLength; 0 when no cell is reachable.
  double spanFraction = 0.0;
};

ConeSpan coneSpan(const FaultCone& cone, const std::vector<std::size_t>& cellOrder,
                  std::size_t chainLength);

}  // namespace scandiag
