#include "netlist/bench_writer.hpp"

#include <fstream>
#include <sstream>

#include "common/assert.hpp"

namespace scandiag {

void writeBench(const Netlist& netlist, std::ostream& out) {
  out << "# " << netlist.name() << "\n";
  out << "# " << netlist.inputs().size() << " inputs, " << netlist.outputs().size()
      << " outputs, " << netlist.dffs().size() << " D-type flipflops, "
      << netlist.combGateCount() << " gates\n\n";
  for (GateId id : netlist.inputs()) out << "INPUT(" << netlist.gateName(id) << ")\n";
  out << "\n";
  for (GateId id : netlist.outputs()) out << "OUTPUT(" << netlist.gateName(id) << ")\n";
  out << "\n";
  for (GateId id = 0; id < netlist.gateCount(); ++id) {
    const Gate& g = netlist.gate(id);
    if (g.type == GateType::Input) continue;
    if (g.type == GateType::Const0 || g.type == GateType::Const1) {
      // .bench has no constant literal; emit a degenerate gate comment so the
      // file stays parseable by third-party tools and round-trips via parser
      // extension below.
      out << netlist.gateName(id) << " = " << gateTypeName(g.type) << "()\n";
      continue;
    }
    out << netlist.gateName(id) << " = " << gateTypeName(g.type) << "(";
    for (std::size_t k = 0; k < g.fanins.size(); ++k) {
      if (k) out << ", ";
      out << netlist.gateName(g.fanins[k]);
    }
    out << ")\n";
  }
}

std::string writeBenchString(const Netlist& netlist) {
  std::ostringstream os;
  writeBench(netlist, os);
  return os.str();
}

void writeBenchFile(const Netlist& netlist, const std::string& path) {
  std::ofstream out(path);
  SCANDIAG_REQUIRE(out.good(), "cannot open for write: " + path);
  writeBench(netlist, out);
}

}  // namespace scandiag
