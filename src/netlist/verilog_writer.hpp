// Structural Verilog export.
//
// Emits a synthesizable gate-level module for a scandiag netlist so circuits
// (including the synthetic ISCAS-89 reconstructions) can move into standard
// EDA flows: primitive gate instances for the combinational logic, a
// positive-edge DFF block per scan cell, and clk/reset ports. Scan stitching
// is intentionally NOT emitted — scan insertion is a downstream DFT step and
// scandiag's ScanTopology is the authority on chain order.
#pragma once

#include <ostream>
#include <string>

#include "netlist/netlist.hpp"

namespace scandiag {

/// Writes `module <name>(clk, reset, PIs..., POs...)`. Names are sanitized to
/// Verilog identifiers ([A-Za-z0-9_], prefixed if needed); sanitization is
/// collision-checked and throws on a clash.
void writeVerilog(const Netlist& netlist, std::ostream& out);
std::string writeVerilogString(const Netlist& netlist);
void writeVerilogFile(const Netlist& netlist, const std::string& path);

}  // namespace scandiag
