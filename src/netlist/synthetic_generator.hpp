// Deterministic synthetic circuit generator with locality-controlled structure.
//
// Substitute for the original ISCAS-89 netlists (DESIGN.md §5): for a given
// size profile it builds a levelized random sequential circuit in which gates
// draw fanins from structurally nearby signals. "Nearby" is defined on a
// one-dimensional position axis shared with the scan-cell ordering, so a
// fault's output cone reaches a *clustered* run of next-state flops — the
// physical phenomenon (paper §3) whose exploitation is the point of
// interval-based partitioning. A small global-wire probability reproduces the
// occasional long-range signal (resets, control) that de-clusters some cones.
//
// The generator is fully deterministic: (profile, options) → identical netlist
// on every platform.
#pragma once

#include <cstdint>

#include "netlist/iscas89_profiles.hpp"
#include "netlist/netlist.hpp"

namespace scandiag {

struct GeneratorOptions {
  std::uint64_t seed = 1;
  /// Number of combinational logic levels between scan-out and capture.
  std::size_t levels = 6;
  /// Half-width of the fanin selection window as a fraction of the position
  /// axis. Smaller → tighter fault-cone clusters.
  double localityWindow = 0.01;
  /// Probability that a fanin taps a source (PI / scan cell) instead of the
  /// previous logic level (keeps logic shallow and testable).
  double sourceTap = 0.05;
  /// Probability that a fanin ignores locality and taps anywhere in the
  /// previous level (long global wires).
  double globalTap = 0.005;
  /// Gate-type mix in percent (must sum to 100). XOR/XNOR propagate errors
  /// unconditionally, so their share controls how far fault effects travel —
  /// i.e. how many scan cells a typical fault corrupts.
  unsigned pctNand = 25, pctNor = 18, pctAnd = 9, pctOr = 9;
  unsigned pctNot = 10, pctBuf = 4, pctXor = 15, pctXnor = 10;
  /// Share of 3-input gates among the variable-arity types (rest are 2-input).
  unsigned pctArity3 = 20;
  /// High-fanout "hub" nets (clock enables, control signals): pctHub percent
  /// of each level's gates become hubs, and each fanin taps a hub with
  /// probability hubTap. Hubs give a minority of faults very wide cones — the
  /// heavy tail of failing-cell counts the paper observes in real circuits
  /// ("some faults may cause a large number of failing scan cells").
  unsigned pctHub = 3;
  double hubTap = 0.02;
};

/// Builds a circuit matching `profile`'s PI/PO/DFF/gate counts exactly.
/// Postconditions: validate() passes; every DFF has a D driver; every
/// combinational gate has at least one observing path (PO or DFF).
Netlist generateCircuit(const Iscas89Profile& profile, const GeneratorOptions& options = {});

/// generateCircuit(iscas89Profile(name), options), with the seed additionally
/// mixed with the name so each named circuit is distinct under equal options.
Netlist generateNamedCircuit(std::string_view name, const GeneratorOptions& options = {});

}  // namespace scandiag
