#include "netlist/synthetic_generator.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace scandiag {

namespace {

struct Slot {
  GateId id;
  double pos;
};

/// Picks a slot whose position is within `window` of `p`, widening the window
/// geometrically when the interval is empty. `slots` must be sorted by pos.
const Slot& pickNear(const std::vector<Slot>& slots, double p, double window,
                     Xoroshiro128& rng) {
  SCANDIAG_REQUIRE(!slots.empty(), "pickNear on empty slot list");
  // Widen until the window holds a minimum candidate pool: with fewer than
  // ~6 candidates per window the same few signals get re-picked constantly,
  // the logic reconverges on itself, and error propagation dies of
  // correlation. Small circuits therefore get effectively wider windows;
  // large circuits keep the configured (tight) locality.
  constexpr std::size_t kMinPool = 6;
  double w = window > 0 ? window : 1.0 / static_cast<double>(slots.size());
  while (true) {
    const auto lo = std::lower_bound(slots.begin(), slots.end(), p - w,
                                     [](const Slot& s, double v) { return s.pos < v; });
    const auto hi = std::upper_bound(slots.begin(), slots.end(), p + w,
                                     [](double v, const Slot& s) { return v < s.pos; });
    const std::size_t span = static_cast<std::size_t>(hi - lo);
    if (span >= kMinPool || w > 1.0) {
      if (span == 0) return slots[rng.nextBelow(slots.size())];
      return *(lo + static_cast<std::ptrdiff_t>(rng.nextBelow(span)));
    }
    w *= 2;
  }
}

GateType sampleGateType(const GeneratorOptions& o, Xoroshiro128& rng) {
  // Weighted mix; inverting gates keep internal signal probabilities near 1/2
  // (random-pattern testability), XOR share keeps error propagation alive.
  const std::uint64_t r = rng.nextBelow(100);
  std::uint64_t acc = o.pctNand;
  if (r < acc) return GateType::Nand;
  if (r < (acc += o.pctNor)) return GateType::Nor;
  if (r < (acc += o.pctAnd)) return GateType::And;
  if (r < (acc += o.pctOr)) return GateType::Or;
  if (r < (acc += o.pctNot)) return GateType::Not;
  if (r < (acc += o.pctBuf)) return GateType::Buf;
  if (r < (acc += o.pctXor)) return GateType::Xor;
  return GateType::Xnor;
}

std::size_t arityFor(GateType t, const GeneratorOptions& o, Xoroshiro128& rng) {
  switch (t) {
    case GateType::Not:
    case GateType::Buf:
      return 1;
    case GateType::Xor:
    case GateType::Xnor:
      return 2;
    default:
      return rng.nextBelow(100) < o.pctArity3 ? 3 : 2;
  }
}

bool variableArity(GateType t) {
  return t == GateType::And || t == GateType::Nand || t == GateType::Or ||
         t == GateType::Nor || t == GateType::Xor || t == GateType::Xnor;
}

std::uint64_t mixName(std::uint64_t seed, std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Netlist generateCircuit(const Iscas89Profile& profile, const GeneratorOptions& options) {
  SCANDIAG_REQUIRE(profile.numInputs > 0, "profile needs at least one input");
  SCANDIAG_REQUIRE(profile.numDffs > 0, "profile needs at least one DFF");
  SCANDIAG_REQUIRE(profile.numGates >= 1, "profile needs at least one gate");
  SCANDIAG_REQUIRE(profile.numOutputs >= 1, "profile needs at least one output");

  Xoroshiro128 rng(mixName(options.seed, profile.name));
  Netlist nl(profile.name);

  // --- Sources with stratified positions; DFF ordinal order == position order
  // so the natural scan stitching is layout-like (DESIGN.md §6).
  std::vector<Slot> sources;
  std::vector<Slot> dffSlots;
  for (std::size_t i = 0; i < profile.numInputs; ++i) {
    const GateId id = nl.addInput("pi" + std::to_string(i));
    sources.push_back({id, (static_cast<double>(i) + 0.5) / static_cast<double>(profile.numInputs)});
  }
  for (std::size_t i = 0; i < profile.numDffs; ++i) {
    const GateId id = nl.addDff("ff" + std::to_string(i));
    const double p = (static_cast<double>(i) + 0.5) / static_cast<double>(profile.numDffs);
    sources.push_back({id, p});
    dffSlots.push_back({id, p});
  }
  std::sort(sources.begin(), sources.end(), [](const Slot& a, const Slot& b) { return a.pos < b.pos; });

  // --- Level sizing: roughly equal levels, last level capped at the number of
  // available consumers (DFFs + POs) so every last-level gate is observed.
  const std::size_t numConsumers = profile.numDffs + profile.numOutputs;
  std::size_t numLevels = std::min(options.levels, profile.numGates / 3 + 1);
  numLevels = std::max<std::size_t>(numLevels, 1);
  std::vector<std::size_t> levelSize(numLevels, profile.numGates / numLevels);
  for (std::size_t l = 0; l < profile.numGates % numLevels; ++l) ++levelSize[l];
  if (levelSize.back() > numConsumers && numLevels > 1) {
    std::size_t overflow = levelSize.back() - numConsumers;
    levelSize.back() = numConsumers;
    for (std::size_t l = 0; overflow > 0; l = (l + 1) % (numLevels - 1)) {
      ++levelSize[l];
      --overflow;
    }
  }

  // --- Build levels.
  std::vector<std::vector<Slot>> levels(numLevels);
  std::vector<std::vector<GateId>> hubs(numLevels);  // per-level high-fanout nets
  std::size_t gateCounter = 0;
  for (std::size_t l = 0; l < numLevels; ++l) {
    const std::vector<Slot>& prev = (l == 0) ? sources : levels[l - 1];
    const std::vector<GateId>& prevHubs = (l == 0) ? std::vector<GateId>{} : hubs[l - 1];
    levels[l].reserve(levelSize[l]);
    for (std::size_t i = 0; i < levelSize[l]; ++i) {
      // Stratified position with jitter keeps each level sorted by pos.
      const double p = (static_cast<double>(i) + rng.nextDouble()) /
                       static_cast<double>(std::max<std::size_t>(levelSize[l], 1));
      const GateType type = sampleGateType(options, rng);
      const std::size_t arity = arityFor(type, options, rng);
      std::vector<GateId> fanins;
      fanins.reserve(arity);
      for (std::size_t k = 0; k < arity; ++k) {
        const double roll = rng.nextDouble();
        GateId pick;
        if (!prevHubs.empty() && roll < options.hubTap) {
          pick = prevHubs[rng.nextBelow(prevHubs.size())];
        } else if (roll < options.hubTap + options.globalTap) {
          pick = prev[rng.nextBelow(prev.size())].id;
        } else if (l > 0 && roll < options.hubTap + options.globalTap + options.sourceTap) {
          pick = pickNear(sources, p, options.localityWindow, rng).id;
        } else {
          pick = pickNear(prev, p, options.localityWindow, rng).id;
        }
        // Prefer distinct fanins; duplicates are legal but uninteresting.
        for (int retry = 0; retry < 3 && std::find(fanins.begin(), fanins.end(), pick) != fanins.end();
             ++retry) {
          pick = pickNear(prev, p, options.localityWindow, rng).id;
        }
        fanins.push_back(pick);
      }
      const GateId id = nl.addGate(type, "g" + std::to_string(gateCounter++), std::move(fanins));
      levels[l].push_back({id, p});
    }
    // Designate this level's hubs (skip tiny levels: a hub in a 4-gate level
    // would dominate the netlist).
    if (levelSize[l] >= 8) {
      const std::size_t hubCount =
          std::max<std::size_t>(levelSize[l] * options.pctHub / 100, 1);
      for (std::size_t h = 0; h < hubCount; ++h)
        hubs[l].push_back(levels[l][rng.nextBelow(levels[l].size())].id);
    }
  }

  // --- Observe every last-level gate: proportional position-monotone mapping
  // from consumers (DFF D inputs + PO slots, sorted by position) onto the
  // last level. consumers >= lastSize, so the floor mapping is surjective.
  const std::vector<Slot>& last = levels.back();
  struct Consumer {
    double pos;
    bool isDff;
    std::size_t index;  // dff ordinal or output slot
  };
  std::vector<Consumer> consumers;
  consumers.reserve(numConsumers);
  for (std::size_t k = 0; k < dffSlots.size(); ++k)
    consumers.push_back({dffSlots[k].pos, true, k});
  for (std::size_t k = 0; k < profile.numOutputs; ++k)
    consumers.push_back(
        {(static_cast<double>(k) + 0.5) / static_cast<double>(profile.numOutputs), false, k});
  std::sort(consumers.begin(), consumers.end(),
            [](const Consumer& a, const Consumer& b) { return a.pos < b.pos; });

  std::vector<GateId> poPicks;
  poPicks.reserve(profile.numOutputs);
  for (std::size_t j = 0; j < consumers.size(); ++j) {
    const std::size_t gi = j * last.size() / consumers.size();
    const GateId driver = last[gi].id;
    if (consumers[j].isDff) {
      nl.setDffInput(dffSlots[consumers[j].index].id, driver);
    } else {
      poPicks.push_back(driver);
    }
  }
  // De-duplicate PO picks so the PO count matches the profile exactly.
  std::vector<bool> isPo(nl.gateCount(), false);
  std::vector<GateId> backfill;
  for (std::size_t l = numLevels; l-- > 0;) {
    for (const Slot& s : levels[l]) backfill.push_back(s.id);
  }
  std::size_t backfillCursor = 0;
  for (GateId& pick : poPicks) {
    if (isPo[pick]) {
      while (backfillCursor < backfill.size() && isPo[backfill[backfillCursor]]) ++backfillCursor;
      SCANDIAG_ASSERT(backfillCursor < backfill.size(), "not enough gates for distinct POs");
      pick = backfill[backfillCursor];
    }
    isPo[pick] = true;
    nl.markOutput(pick);
  }

  // --- Observability sweep for inner levels: any gate nobody reads becomes an
  // extra fanin of a nearby variable-arity gate one level up.
  std::vector<std::size_t> uses(nl.gateCount(), 0);
  for (GateId id = 0; id < nl.gateCount(); ++id) {
    for (GateId f : nl.gate(id).fanins) {
      if (f != kInvalidGate) ++uses[f];
    }
  }
  for (std::size_t l = 0; l + 1 < numLevels; ++l) {
    // Variable-arity gates of the nearest later level that has any, by
    // position (tiny levels may contain only NOT/BUF gates).
    std::vector<Slot> sinks;
    for (std::size_t u = l + 1; u < numLevels && sinks.empty(); ++u) {
      for (const Slot& s : levels[u]) {
        if (variableArity(nl.gate(s.id).type)) sinks.push_back(s);
      }
    }
    for (const Slot& s : levels[l]) {
      if (uses[s.id] != 0 || isPo[s.id]) continue;
      if (!sinks.empty()) {
        const GateId sink = pickNear(sinks, s.pos, options.localityWindow, rng).id;
        nl.appendFanin(sink, s.id);
        ++uses[s.id];
      } else {
        nl.markOutput(s.id);  // last resort: no variable-arity gate above at all
        isPo[s.id] = true;
      }
    }
  }

  nl.validate();
  return nl;
}

Netlist generateNamedCircuit(std::string_view name, const GeneratorOptions& options) {
  return generateCircuit(iscas89Profile(name), options);
}

}  // namespace scandiag
