// Writer emitting the ISCAS-89 `.bench` format; inverse of bench_parser.
#pragma once

#include <ostream>
#include <string>

#include "netlist/netlist.hpp"

namespace scandiag {

/// Serializes `netlist` in .bench syntax: INPUT lines, OUTPUT lines, then one
/// assign per DFF and combinational gate. parseBench(writeBench(n)) is
/// structurally identical to n (same names, types, connectivity).
void writeBench(const Netlist& netlist, std::ostream& out);
std::string writeBenchString(const Netlist& netlist);
void writeBenchFile(const Netlist& netlist, const std::string& path);

}  // namespace scandiag
