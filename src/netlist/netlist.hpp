// Gate-level netlist for full-scan sequential circuits (ISCAS-89 style).
//
// Model: a netlist is a set of gates identified by dense GateId. Two gate
// kinds are *sources* for combinational evaluation — primary inputs and DFF
// outputs (the scan-loaded state). A DFF gate's single fanin is its D input;
// the capture step of a scan-BIST pattern samples that fanin. Primary outputs
// are markers on existing gates. There is no separate net object: a gate and
// the net it drives are identified (standard for ISCAS-89 benchmarks, where
// every signal has exactly one driver).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace scandiag {

using GateId = std::uint32_t;
inline constexpr GateId kInvalidGate = static_cast<GateId>(-1);

enum class GateType : std::uint8_t {
  Input,   // primary input (source; no fanins)
  Dff,     // state element (source; fanin[0] = D input, set via setDffInput)
  Buf,
  Not,
  And,
  Nand,
  Or,
  Nor,
  Xor,
  Xnor,
  Const0,  // constant driver (no fanins)
  Const1,
};

/// Human-readable gate type name ("NAND" etc.), as used in .bench files.
std::string_view gateTypeName(GateType t);

/// Parse a .bench gate keyword (case-insensitive); nullopt if unknown.
std::optional<GateType> gateTypeFromName(std::string_view name);

/// True for gates whose value is an evaluation input (Input, Dff, Const*).
bool isSourceType(GateType t);

struct Gate {
  GateType type = GateType::Buf;
  std::vector<GateId> fanins;
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void setName(std::string name) { name_ = std::move(name); }

  // ---- construction ----
  GateId addInput(const std::string& name);
  /// Adds a DFF whose D input is connected later with setDffInput().
  GateId addDff(const std::string& name);
  GateId addGate(GateType type, const std::string& name, std::vector<GateId> fanins);
  void setDffInput(GateId dff, GateId driver);
  void markOutput(GateId gate);
  /// Appends an extra fanin to a variable-arity gate (AND/NAND/OR/NOR/XOR/
  /// XNOR). Used by the synthetic generator's observability sweep.
  void appendFanin(GateId gate, GateId driver);

  // ---- topology ----
  std::size_t gateCount() const { return gates_.size(); }
  const Gate& gate(GateId id) const { return gates_.at(id); }
  const std::string& gateName(GateId id) const { return names_.at(id); }
  GateId findByName(std::string_view name) const;  // kInvalidGate if absent

  const std::vector<GateId>& inputs() const { return inputs_; }
  const std::vector<GateId>& dffs() const { return dffs_; }
  const std::vector<GateId>& outputs() const { return outputs_; }

  /// Number of combinational gates (everything that is not Input/Dff).
  std::size_t combGateCount() const;

  /// Fanout lists, built lazily and cached; invalidated by mutation.
  const std::vector<std::vector<GateId>>& fanouts() const;
  std::size_t fanoutCount(GateId id) const { return fanouts().at(id).size(); }

  /// Structural validation: every fanin resolved, every DFF has a D input,
  /// fanin arities match gate types, no combinational cycles.
  /// Throws std::invalid_argument describing the first violation.
  void validate() const;

 private:
  void invalidateCaches();

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<std::string> names_;
  std::vector<GateId> inputs_;
  std::vector<GateId> dffs_;
  std::vector<GateId> outputs_;
  std::unordered_map<std::string, GateId> byName_;
  mutable std::vector<std::vector<GateId>> fanouts_;  // lazy cache
  mutable bool fanoutsValid_ = false;
};

}  // namespace scandiag
