#include "netlist/iscas89_profiles.hpp"

#include <stdexcept>

namespace scandiag {

const std::vector<Iscas89Profile>& iscas89Profiles() {
  static const std::vector<Iscas89Profile> kProfiles = {
      {"s27", 4, 1, 3, 10},
      {"s208", 10, 1, 8, 104},
      {"s298", 3, 6, 14, 119},
      {"s344", 9, 11, 15, 160},
      {"s349", 9, 11, 15, 161},
      {"s382", 3, 6, 21, 158},
      {"s386", 7, 7, 6, 159},
      {"s400", 3, 6, 21, 164},
      {"s420", 18, 1, 16, 218},
      {"s444", 3, 6, 21, 181},
      {"s510", 19, 7, 6, 211},
      {"s526", 3, 6, 21, 193},
      {"s641", 35, 24, 19, 379},
      {"s713", 35, 23, 19, 393},
      {"s820", 18, 19, 5, 289},
      {"s832", 18, 19, 5, 287},
      {"s838", 34, 1, 32, 446},
      {"s953", 16, 23, 29, 395},
      {"s1196", 14, 14, 18, 529},
      {"s1238", 14, 14, 18, 508},
      {"s1423", 17, 5, 74, 657},
      {"s1488", 8, 19, 6, 653},
      {"s1494", 8, 19, 6, 647},
      {"s5378", 35, 49, 179, 2779},
      {"s9234", 36, 39, 211, 5597},
      {"s13207", 62, 152, 638, 7951},
      {"s15850", 77, 150, 534, 9772},
      {"s35932", 35, 320, 1728, 16065},
      {"s38417", 28, 106, 1636, 22179},
      {"s38584", 38, 304, 1426, 19253},
  };
  return kProfiles;
}

const Iscas89Profile& iscas89Profile(std::string_view name) {
  for (const Iscas89Profile& p : iscas89Profiles()) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("unknown ISCAS-89 profile: " + std::string(name));
}

const std::vector<std::string>& sixLargestIscas89() {
  static const std::vector<std::string> kNames = {"s9234",  "s13207", "s15850",
                                                  "s35932", "s38417", "s38584"};
  return kNames;
}

const std::vector<std::string>& d695Iscas89Modules() {
  static const std::vector<std::string> kNames = {"s838",   "s9234",  "s5378",  "s38584",
                                                  "s13207", "s38417", "s35932", "s15850"};
  return kNames;
}

}  // namespace scandiag
