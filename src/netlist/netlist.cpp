#include "netlist/netlist.hpp"

#include <algorithm>
#include <array>
#include <cctype>

#include "common/assert.hpp"
#include "netlist/levelizer.hpp"

namespace scandiag {

namespace {

struct TypeInfo {
  GateType type;
  std::string_view name;
  std::size_t minArity;
  std::size_t maxArity;  // SIZE_MAX = unbounded
};

constexpr std::size_t kUnbounded = static_cast<std::size_t>(-1);

constexpr std::array<TypeInfo, 12> kTypeTable{{
    {GateType::Input, "INPUT", 0, 0},
    {GateType::Dff, "DFF", 1, 1},
    {GateType::Buf, "BUF", 1, 1},
    {GateType::Not, "NOT", 1, 1},
    {GateType::And, "AND", 1, kUnbounded},
    {GateType::Nand, "NAND", 1, kUnbounded},
    {GateType::Or, "OR", 1, kUnbounded},
    {GateType::Nor, "NOR", 1, kUnbounded},
    {GateType::Xor, "XOR", 1, kUnbounded},
    {GateType::Xnor, "XNOR", 1, kUnbounded},
    {GateType::Const0, "CONST0", 0, 0},
    {GateType::Const1, "CONST1", 0, 0},
}};

const TypeInfo& typeInfo(GateType t) {
  for (const TypeInfo& ti : kTypeTable)
    if (ti.type == t) return ti;
  throw std::logic_error("unknown GateType");
}

}  // namespace

std::string_view gateTypeName(GateType t) { return typeInfo(t).name; }

std::optional<GateType> gateTypeFromName(std::string_view name) {
  std::string upper(name);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  if (upper == "BUFF") upper = "BUF";  // common .bench spelling
  for (const TypeInfo& ti : kTypeTable)
    if (ti.name == upper) return ti.type;
  return std::nullopt;
}

bool isSourceType(GateType t) {
  return t == GateType::Input || t == GateType::Dff || t == GateType::Const0 ||
         t == GateType::Const1;
}

GateId Netlist::addInput(const std::string& name) {
  return addGate(GateType::Input, name, {});
}

GateId Netlist::addDff(const std::string& name) {
  // D input connected later; kInvalidGate placeholder until setDffInput().
  invalidateCaches();
  const GateId id = static_cast<GateId>(gates_.size());
  SCANDIAG_REQUIRE(byName_.emplace(name, id).second, "duplicate gate name: " + name);
  gates_.push_back(Gate{GateType::Dff, {kInvalidGate}});
  names_.push_back(name);
  dffs_.push_back(id);
  return id;
}

GateId Netlist::addGate(GateType type, const std::string& name, std::vector<GateId> fanins) {
  SCANDIAG_REQUIRE(type != GateType::Dff, "use addDff() for state elements");
  const TypeInfo& ti = typeInfo(type);
  SCANDIAG_REQUIRE(fanins.size() >= ti.minArity &&
                       (ti.maxArity == kUnbounded || fanins.size() <= ti.maxArity),
                   "bad fanin arity for gate " + name);
  for (GateId f : fanins)
    SCANDIAG_REQUIRE(f < gates_.size(), "unresolved fanin of gate " + name);
  invalidateCaches();
  const GateId id = static_cast<GateId>(gates_.size());
  SCANDIAG_REQUIRE(byName_.emplace(name, id).second, "duplicate gate name: " + name);
  gates_.push_back(Gate{type, std::move(fanins)});
  names_.push_back(name);
  if (type == GateType::Input) inputs_.push_back(id);
  return id;
}

void Netlist::setDffInput(GateId dff, GateId driver) {
  SCANDIAG_REQUIRE(dff < gates_.size() && gates_[dff].type == GateType::Dff,
                   "setDffInput target is not a DFF");
  SCANDIAG_REQUIRE(driver < gates_.size(), "unresolved DFF driver");
  invalidateCaches();
  gates_[dff].fanins[0] = driver;
}

void Netlist::markOutput(GateId gate) {
  SCANDIAG_REQUIRE(gate < gates_.size(), "unresolved output gate");
  if (std::find(outputs_.begin(), outputs_.end(), gate) == outputs_.end())
    outputs_.push_back(gate);
}

void Netlist::appendFanin(GateId gate, GateId driver) {
  SCANDIAG_REQUIRE(gate < gates_.size(), "appendFanin target out of range");
  SCANDIAG_REQUIRE(driver < gates_.size(), "appendFanin driver out of range");
  const GateType t = gates_[gate].type;
  SCANDIAG_REQUIRE(t == GateType::And || t == GateType::Nand || t == GateType::Or ||
                       t == GateType::Nor || t == GateType::Xor || t == GateType::Xnor,
                   "appendFanin requires a variable-arity gate");
  invalidateCaches();
  gates_[gate].fanins.push_back(driver);
}

GateId Netlist::findByName(std::string_view name) const {
  const auto it = byName_.find(std::string(name));
  return it == byName_.end() ? kInvalidGate : it->second;
}

std::size_t Netlist::combGateCount() const {
  std::size_t n = 0;
  for (const Gate& g : gates_)
    if (!isSourceType(g.type)) ++n;
  return n;
}

const std::vector<std::vector<GateId>>& Netlist::fanouts() const {
  if (!fanoutsValid_) {
    fanouts_.assign(gates_.size(), {});
    for (GateId id = 0; id < gates_.size(); ++id) {
      for (GateId f : gates_[id].fanins) {
        if (f != kInvalidGate) fanouts_[f].push_back(id);
      }
    }
    fanoutsValid_ = true;
  }
  return fanouts_;
}

void Netlist::validate() const {
  for (GateId id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    for (GateId f : g.fanins) {
      SCANDIAG_REQUIRE(f != kInvalidGate, "dangling fanin (unconnected DFF D?) at gate " + names_[id]);
      SCANDIAG_REQUIRE(f < gates_.size(), "fanin out of range at gate " + names_[id]);
    }
  }
  // Levelization throws on combinational cycles.
  (void)levelize(*this);
}

void Netlist::invalidateCaches() { fanoutsValid_ = false; }

}  // namespace scandiag
