// Parser for the ISCAS-89 `.bench` netlist format.
//
// Grammar (as used by the public ISCAS-85/89 distributions):
//   # comment
//   INPUT(name)
//   OUTPUT(name)
//   name = GATE(fanin1, fanin2, ...)        GATE in {AND, NAND, OR, NOR,
//                                           NOT, BUF/BUFF, XOR, XNOR, DFF}
// Signals may be used before they are defined; the parser resolves forward
// references in a second pass. Errors carry 1-based line numbers.
#pragma once

#include <istream>
#include <string>

#include "netlist/netlist.hpp"

namespace scandiag {

/// Parses a .bench netlist. `circuitName` names the result (typically the
/// file stem). Throws std::invalid_argument with a line-numbered message on
/// malformed input, undefined signals, or duplicate definitions.
Netlist parseBench(std::istream& in, const std::string& circuitName);
Netlist parseBenchString(const std::string& text, const std::string& circuitName);
Netlist parseBenchFile(const std::string& path);

}  // namespace scandiag
