#include "netlist/bench_parser.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "common/errors.hpp"

namespace scandiag {

namespace {

struct Statement {
  enum class Kind { Input, Output, Assign } kind;
  std::string lhs;                 // signal being declared/defined
  GateType type = GateType::Buf;   // for Assign
  std::vector<std::string> fanins; // for Assign
  int line = 0;
};

[[noreturn]] void fail(int line, const std::string& msg) {
  throw ParseError(".bench", line, msg);
}

std::string strip(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool validSignalName(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
          c == '[' || c == ']' || c == '-'))
      return false;
  }
  return true;
}

/// Parses "KEYWORD(arg1, arg2)" returning {keyword, args}; line for errors.
std::pair<std::string, std::vector<std::string>> parseCall(const std::string& text, int line) {
  const std::size_t open = text.find('(');
  const std::size_t close = text.rfind(')');
  if (open == std::string::npos || close == std::string::npos || close < open)
    fail(line, "expected KEYWORD(args): '" + text + "'");
  if (!strip(text.substr(close + 1)).empty())
    fail(line, "trailing characters after ')'");
  std::string keyword = strip(text.substr(0, open));
  std::vector<std::string> args;
  std::string inner = text.substr(open + 1, close - open - 1);
  std::size_t pos = 0;
  while (pos <= inner.size()) {
    const std::size_t comma = inner.find(',', pos);
    const std::string arg =
        strip(comma == std::string::npos ? inner.substr(pos) : inner.substr(pos, comma - pos));
    if (!arg.empty()) args.push_back(arg);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return {keyword, args};
}

}  // namespace

Netlist parseBench(std::istream& in, const std::string& circuitName) {
  std::vector<Statement> statements;
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = strip(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      auto [keyword, args] = parseCall(line, lineNo);
      Statement st;
      st.line = lineNo;
      if (keyword == "INPUT")
        st.kind = Statement::Kind::Input;
      else if (keyword == "OUTPUT")
        st.kind = Statement::Kind::Output;
      else
        fail(lineNo, "unknown directive '" + keyword + "'");
      if (args.size() != 1) fail(lineNo, keyword + " takes exactly one signal");
      if (!validSignalName(args[0])) fail(lineNo, "invalid signal name '" + args[0] + "'");
      st.lhs = args[0];
      statements.push_back(std::move(st));
    } else {
      Statement st;
      st.line = lineNo;
      st.kind = Statement::Kind::Assign;
      st.lhs = strip(line.substr(0, eq));
      if (!validSignalName(st.lhs)) fail(lineNo, "invalid signal name '" + st.lhs + "'");
      auto [keyword, args] = parseCall(line.substr(eq + 1), lineNo);
      const auto type = gateTypeFromName(keyword);
      if (!type || *type == GateType::Input)
        fail(lineNo, "unknown gate type '" + keyword + "'");
      st.type = *type;
      const bool isConst = st.type == GateType::Const0 || st.type == GateType::Const1;
      if (args.empty() && !isConst) fail(lineNo, "gate '" + st.lhs + "' has no fanins");
      if (st.type == GateType::Dff && args.size() != 1)
        fail(lineNo, "DFF '" + st.lhs + "' takes exactly one D input");
      for (const std::string& a : args) {
        if (!validSignalName(a)) fail(lineNo, "invalid fanin name '" + a + "'");
      }
      st.fanins = std::move(args);
      statements.push_back(std::move(st));
    }
  }

  // Pass 1: declare all signals (inputs, DFFs, and combinational gates) so
  // forward references resolve. Duplicate definitions are errors.
  Netlist nl(circuitName);
  std::unordered_map<std::string, int> definedAt;
  for (const Statement& st : statements) {
    if (st.kind == Statement::Kind::Output) continue;
    const auto [it, inserted] = definedAt.emplace(st.lhs, st.line);
    if (!inserted)
      fail(st.line, "signal '" + st.lhs + "' already defined at line " + std::to_string(it->second));
  }

  // Declare sources first (inputs, DFFs), then combinational gates in file
  // order, resolving fanins at the end. We create placeholders by recording
  // assigns and emitting them once all names exist: since Netlist::addGate
  // requires resolved fanins, do a classic two-phase build — create Input/Dff
  // now, then topologically emit combinational gates.
  for (const Statement& st : statements) {
    if (st.kind == Statement::Kind::Input) {
      nl.addInput(st.lhs);
    } else if (st.kind == Statement::Kind::Assign && st.type == GateType::Dff) {
      nl.addDff(st.lhs);
    }
  }

  // Emit combinational assigns; iterate until fixpoint to honor forward
  // references (file order in .bench is arbitrary).
  std::vector<const Statement*> remaining;
  for (const Statement& st : statements)
    if (st.kind == Statement::Kind::Assign && st.type != GateType::Dff) remaining.push_back(&st);

  while (!remaining.empty()) {
    std::vector<const Statement*> next;
    bool progress = false;
    for (const Statement* st : remaining) {
      std::vector<GateId> fanins;
      fanins.reserve(st->fanins.size());
      bool ok = true;
      for (const std::string& f : st->fanins) {
        const GateId id = nl.findByName(f);
        if (id == kInvalidGate) {
          ok = false;
          break;
        }
        fanins.push_back(id);
      }
      if (ok) {
        nl.addGate(st->type, st->lhs, std::move(fanins));
        progress = true;
      } else {
        next.push_back(st);
      }
    }
    if (!progress) {
      // Either an undefined signal or a combinational cycle; report the former.
      for (const Statement* st : remaining) {
        for (const std::string& f : st->fanins) {
          if (definedAt.find(f) == definedAt.end())
            fail(st->line, "fanin '" + f + "' of gate '" + st->lhs + "' is never defined");
        }
      }
      fail(remaining.front()->line,
           "combinational cycle involving gate '" + remaining.front()->lhs + "'");
    }
    remaining = std::move(next);
  }

  // Connect DFF D inputs and mark outputs.
  for (const Statement& st : statements) {
    if (st.kind == Statement::Kind::Assign && st.type == GateType::Dff) {
      const GateId driver = nl.findByName(st.fanins[0]);
      if (driver == kInvalidGate)
        fail(st.line, "DFF '" + st.lhs + "' D input '" + st.fanins[0] + "' is never defined");
      nl.setDffInput(nl.findByName(st.lhs), driver);
    } else if (st.kind == Statement::Kind::Output) {
      const GateId g = nl.findByName(st.lhs);
      if (g == kInvalidGate)
        fail(st.line, "OUTPUT signal '" + st.lhs + "' is never defined");
      nl.markOutput(g);
    }
  }

  nl.validate();
  return nl;
}

Netlist parseBenchString(const std::string& text, const std::string& circuitName) {
  std::istringstream in(text);
  return parseBench(in, circuitName);
}

Netlist parseBenchFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw FileNotFoundError(path);
  std::string stem = path;
  const std::size_t slash = stem.find_last_of('/');
  if (slash != std::string::npos) stem.erase(0, slash + 1);
  const std::size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos) stem.erase(dot);
  return parseBench(in, stem);
}

}  // namespace scandiag
