// Levelization: topological ordering of the combinational part of a netlist.
//
// Sources (primary inputs, DFF outputs, constants) sit at level 0 and are not
// in the evaluation order. Every other gate appears after all of its fanins.
// A combinational cycle (a loop not broken by a DFF) is a structural error and
// raises std::invalid_argument naming a gate on the cycle.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"

namespace scandiag {

struct Levelization {
  /// Combinational gates in dependency order (fanins precede users).
  std::vector<GateId> order;
  /// level[g]: 0 for sources, 1 + max(fanin levels) otherwise.
  std::vector<std::size_t> level;
  std::size_t maxLevel = 0;
};

Levelization levelize(const Netlist& netlist);

}  // namespace scandiag
