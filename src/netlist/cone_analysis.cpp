#include "netlist/cone_analysis.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace scandiag {

FaultCone computeCone(const Netlist& netlist, const Levelization& lev, GateId site) {
  SCANDIAG_REQUIRE(site < netlist.gateCount(), "cone site out of range");
  FaultCone cone;
  const std::size_t numDffs = netlist.dffs().size();
  cone.reachableDffs = BitVector(numDffs);

  // DFF ordinal lookup.
  std::vector<std::size_t> dffOrdinal(netlist.gateCount(), static_cast<std::size_t>(-1));
  for (std::size_t k = 0; k < numDffs; ++k) dffOrdinal[netlist.dffs()[k]] = k;

  std::vector<bool> visited(netlist.gateCount(), false);
  std::vector<GateId> stack{site};
  visited[site] = true;
  const auto& fanouts = netlist.fanouts();
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    if (!isSourceType(netlist.gate(g).type)) cone.gates.push_back(g);
    for (GateId user : fanouts[g]) {
      if (netlist.gate(user).type == GateType::Dff) {
        // Error is captured; no same-cycle propagation through a DFF. Marked
        // even when user == site: a scan cell whose Q-cone feeds back to its
        // own D captures its own fault effect.
        cone.reachableDffs.set(dffOrdinal[user]);
        visited[user] = true;
        continue;
      }
      if (visited[user]) continue;
      visited[user] = true;
      stack.push_back(user);
    }
  }
  // The site gate itself is in cone.gates only if combinational; a faulty
  // source (PI / scan cell output stuck) needs no re-evaluation of itself.
  std::sort(cone.gates.begin(), cone.gates.end(),
            [&](GateId a, GateId b) {
              return lev.level[a] != lev.level[b] ? lev.level[a] < lev.level[b] : a < b;
            });
  for (GateId out : netlist.outputs()) {
    if (visited[out]) cone.reachableOutputs.push_back(out);
  }
  return cone;
}

ConeSpan coneSpan(const FaultCone& cone, const std::vector<std::size_t>& cellOrder,
                  std::size_t chainLength) {
  SCANDIAG_REQUIRE(cellOrder.size() == cone.reachableDffs.size(),
                   "cell order size must match DFF count");
  ConeSpan span;
  bool first = true;
  for (std::size_t k = cone.reachableDffs.findFirst(); k != BitVector::npos;
       k = cone.reachableDffs.findNext(k)) {
    const std::size_t pos = cellOrder[k];
    if (first) {
      span.firstPos = span.lastPos = pos;
      first = false;
    } else {
      span.firstPos = std::min(span.firstPos, pos);
      span.lastPos = std::max(span.lastPos, pos);
    }
    ++span.cells;
  }
  if (span.cells > 0 && chainLength > 0) {
    span.spanFraction =
        static_cast<double>(span.lastPos - span.firstPos + 1) / static_cast<double>(chainLength);
  }
  return span;
}

}  // namespace scandiag
